//! Power-spectrum features used to tell ship-wave spectra from ocean-wave
//! spectra.
//!
//! Section III-C of the paper observes that the ocean-only spectrum has "a
//! high, single peak concentration" while the ship-disturbed spectrum "has
//! multiple peaks and wide crests without distinct peaks". The features here
//! quantify exactly that distinction: dominant-peak count, peak sharpness
//! (fraction of power near the maximum), spectral centroid, bandwidth and
//! flatness.

use serde::{Deserialize, Serialize};

/// A local maximum of a power spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Bin index of the maximum.
    pub bin: usize,
    /// Frequency in Hz (if a bin width was supplied, otherwise the bin index
    /// as f64).
    pub frequency: f64,
    /// Power at the maximum.
    pub power: f64,
}

/// Summary statistics of a one-sided power spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralFeatures {
    /// Number of significant peaks (local maxima above `threshold_frac` of
    /// the global maximum, separated by at least `min_separation` bins).
    pub peak_count: usize,
    /// Fraction of total power within ±`concentration_bins` of the global
    /// maximum: close to 1 for a single narrow swell peak, lower when ship
    /// waves spread energy across the band.
    pub peak_concentration: f64,
    /// Power-weighted mean frequency in Hz.
    pub centroid: f64,
    /// Power-weighted standard deviation about the centroid in Hz.
    pub bandwidth: f64,
    /// Geometric mean over arithmetic mean of power (Wiener entropy); 0 for
    /// a pure tone, →1 for white noise.
    pub flatness: f64,
    /// Total power.
    pub total_power: f64,
}

/// Configuration for peak extraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeakConfig {
    /// A local maximum counts as a peak only if it exceeds this fraction of
    /// the global maximum.
    pub threshold_frac: f64,
    /// Minimum separation between reported peaks, in bins.
    pub min_separation: usize,
    /// Half-width (bins) of the window around the global maximum used for
    /// [`SpectralFeatures::peak_concentration`].
    pub concentration_bins: usize,
}

impl Default for PeakConfig {
    fn default() -> Self {
        PeakConfig {
            threshold_frac: 0.2,
            min_separation: 2,
            concentration_bins: 3,
        }
    }
}

/// Finds significant peaks of a one-sided power spectrum.
///
/// `bin_hz` converts bin indices to frequencies (pass 1.0 to keep indices).
/// Peaks are returned in descending power order.
///
/// # Examples
///
/// ```
/// use sid_dsp::{find_peaks, PeakConfig};
/// let mut spectrum = vec![0.0; 32];
/// spectrum[4] = 10.0;
/// spectrum[20] = 7.0;
/// let peaks = find_peaks(&spectrum, 1.0, &PeakConfig::default());
/// assert_eq!(peaks.len(), 2);
/// assert_eq!(peaks[0].bin, 4);
/// assert_eq!(peaks[1].bin, 20);
/// ```
pub fn find_peaks(power: &[f64], bin_hz: f64, config: &PeakConfig) -> Vec<Peak> {
    if power.is_empty() {
        return Vec::new();
    }
    let max = power.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return Vec::new();
    }
    let threshold = max * config.threshold_frac;
    let mut candidates: Vec<Peak> = Vec::new();
    for i in 0..power.len() {
        let left = if i == 0 { f64::MIN } else { power[i - 1] };
        let right = if i + 1 == power.len() {
            f64::MIN
        } else {
            power[i + 1]
        };
        if power[i] >= threshold && power[i] >= left && power[i] > right {
            candidates.push(Peak {
                bin: i,
                frequency: i as f64 * bin_hz,
                power: power[i],
            });
        }
    }
    candidates.sort_by(|a, b| b.power.partial_cmp(&a.power).unwrap());
    // Greedy non-maximum suppression by bin distance.
    let mut peaks: Vec<Peak> = Vec::new();
    for c in candidates {
        if peaks
            .iter()
            .all(|p| p.bin.abs_diff(c.bin) >= config.min_separation)
        {
            peaks.push(c);
        }
    }
    peaks
}

/// Computes the full feature summary of a one-sided power spectrum.
///
/// Returns all-zero features for an empty or all-zero spectrum.
///
/// # Examples
///
/// ```
/// use sid_dsp::{spectral_features, PeakConfig};
/// let mut narrow = vec![1e-9; 64];
/// narrow[8] = 100.0;
/// let f = spectral_features(&narrow, 0.1, &PeakConfig::default());
/// assert_eq!(f.peak_count, 1);
/// assert!(f.peak_concentration > 0.99);
/// ```
pub fn spectral_features(power: &[f64], bin_hz: f64, config: &PeakConfig) -> SpectralFeatures {
    let total: f64 = power.iter().sum();
    if power.is_empty() || total <= 0.0 {
        return SpectralFeatures {
            peak_count: 0,
            peak_concentration: 0.0,
            centroid: 0.0,
            bandwidth: 0.0,
            flatness: 0.0,
            total_power: 0.0,
        };
    }
    let peaks = find_peaks(power, bin_hz, config);
    let peak_count = peaks.len();

    let max_bin = power
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let lo = max_bin.saturating_sub(config.concentration_bins);
    let hi = (max_bin + config.concentration_bins).min(power.len() - 1);
    let near: f64 = power[lo..=hi].iter().sum();
    let peak_concentration = near / total;

    let centroid = power
        .iter()
        .enumerate()
        .map(|(k, &p)| k as f64 * bin_hz * p)
        .sum::<f64>()
        / total;
    let variance = power
        .iter()
        .enumerate()
        .map(|(k, &p)| {
            let d = k as f64 * bin_hz - centroid;
            d * d * p
        })
        .sum::<f64>()
        / total;
    let bandwidth = variance.sqrt();

    let n = power.len() as f64;
    // Flatness on strictly positive values; add a tiny floor so isolated
    // zero bins do not collapse the geometric mean.
    let floor = total / n * 1e-12;
    let log_mean = power.iter().map(|&p| (p + floor).ln()).sum::<f64>() / n;
    let arith_mean = total / n;
    let flatness = (log_mean.exp() / arith_mean).clamp(0.0, 1.0);

    SpectralFeatures {
        peak_count,
        peak_concentration,
        centroid,
        bandwidth,
        flatness,
        total_power: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_features(power: &[f64]) -> SpectralFeatures {
        spectral_features(power, 1.0, &PeakConfig::default())
    }

    #[test]
    fn empty_spectrum_yields_zero_features() {
        let f = default_features(&[]);
        assert_eq!(f.peak_count, 0);
        assert_eq!(f.total_power, 0.0);
        assert!(find_peaks(&[], 1.0, &PeakConfig::default()).is_empty());
    }

    #[test]
    fn all_zero_spectrum_yields_zero_features() {
        let f = default_features(&[0.0; 16]);
        assert_eq!(f.peak_count, 0);
        assert_eq!(f.flatness, 0.0);
    }

    #[test]
    fn single_tone_has_one_concentrated_peak() {
        let mut p = vec![0.0; 128];
        p[10] = 50.0;
        p[9] = 5.0;
        p[11] = 5.0;
        let f = default_features(&p);
        assert_eq!(f.peak_count, 1);
        assert!(f.peak_concentration > 0.99);
        assert!(f.flatness < 0.1);
    }

    #[test]
    fn multi_peak_spectrum_counts_all() {
        let mut p = vec![0.1; 64];
        for &b in &[5usize, 15, 25, 40] {
            p[b] = 10.0;
        }
        let f = default_features(&p);
        assert_eq!(f.peak_count, 4);
        assert!(f.peak_concentration < 0.5);
    }

    #[test]
    fn close_peaks_are_suppressed() {
        let mut p = vec![0.0; 32];
        p[10] = 10.0;
        p[11] = 9.0; // adjacent, within min_separation
        let peaks = find_peaks(&p, 1.0, &PeakConfig::default());
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].bin, 10);
    }

    #[test]
    fn sub_threshold_maxima_ignored() {
        let mut p = vec![0.0; 32];
        p[5] = 100.0;
        p[20] = 1.0; // below 20 % of max
        let peaks = find_peaks(&p, 1.0, &PeakConfig::default());
        assert_eq!(peaks.len(), 1);
    }

    #[test]
    fn centroid_of_symmetric_pair_is_midpoint() {
        let mut p = vec![0.0; 64];
        p[10] = 5.0;
        p[30] = 5.0;
        let f = default_features(&p);
        assert!((f.centroid - 20.0).abs() < 1e-9);
        assert!((f.bandwidth - 10.0).abs() < 1e-9);
    }

    #[test]
    fn flatness_orders_noise_above_tone() {
        let mut tone = vec![1e-6; 64];
        tone[8] = 10.0;
        let noise = vec![1.0; 64];
        let f_tone = default_features(&tone);
        let f_noise = default_features(&noise);
        assert!(f_noise.flatness > 0.99);
        assert!(f_tone.flatness < f_noise.flatness);
    }

    #[test]
    fn frequency_scaling_applies_bin_hz() {
        let mut p = vec![0.0; 16];
        p[4] = 1.0;
        let peaks = find_peaks(&p, 0.5, &PeakConfig::default());
        assert_eq!(peaks[0].frequency, 2.0);
        let f = spectral_features(&p, 0.5, &PeakConfig::default());
        assert!((f.centroid - 2.0).abs() < 1e-12);
    }

    #[test]
    fn plateau_reports_single_peak() {
        // Equal adjacent values: `>=` left, `>` right picks the last
        // plateau element, and only one peak is reported.
        let p = vec![0.0, 5.0, 5.0, 0.0];
        let peaks = find_peaks(&p, 1.0, &PeakConfig::default());
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].bin, 2);
    }
}
