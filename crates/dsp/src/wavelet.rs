//! Morlet continuous wavelet transform (the paper's Section III-C.2).
//!
//! The paper uses the Morlet mother wavelet (its eq. 3) to localise
//! ship-wave energy in both time and frequency, observing that "the ship
//! waves mainly focus on the low frequency spectrum" (Fig. 7). We implement
//! the standard analytic Morlet CWT evaluated by direct convolution with a
//! truncated kernel per scale, which is plenty for the frame lengths
//! involved (≤ tens of thousands of samples, tens of scales).

use serde::{Deserialize, Serialize};

use crate::complex::Complex;
use crate::error::{DspError, DspResult};

/// Configuration for a Morlet continuous wavelet transform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MorletConfig {
    /// Centre (angular) frequency parameter ω₀ of the mother wavelet; the
    /// classic choice 6.0 balances time and frequency resolution.
    pub omega0: f64,
    /// Sample rate of the analysed signal in Hz.
    pub sample_rate: f64,
    /// Kernel truncation: the Gaussian envelope is cut at this many standard
    /// deviations (4.0 keeps > 99.99 % of the energy).
    pub truncation_sigmas: f64,
}

impl MorletConfig {
    /// Standard ω₀ = 6 Morlet at the given sample rate.
    pub fn new(sample_rate: f64) -> Self {
        MorletConfig {
            omega0: 6.0,
            sample_rate,
            truncation_sigmas: 4.0,
        }
    }
}

/// A scalogram: per-scale, per-time wavelet power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scalogram {
    /// Pseudo-frequency in Hz for each scale row.
    pub frequencies: Vec<f64>,
    /// Power matrix: `power[s][t]` is |CWT|² at scale `s` and sample `t`.
    pub power: Vec<Vec<f64>>,
    /// Sample rate of the time axis in Hz.
    pub sample_rate: f64,
}

impl Scalogram {
    /// Number of time samples.
    pub fn len_time(&self) -> usize {
        self.power.first().map_or(0, Vec::len)
    }

    /// Mean power of each scale row over the whole record.
    pub fn mean_power_per_frequency(&self) -> Vec<f64> {
        self.power
            .iter()
            .map(|row| {
                if row.is_empty() {
                    0.0
                } else {
                    row.iter().sum::<f64>() / row.len() as f64
                }
            })
            .collect()
    }

    /// Fraction of total power carried by rows with pseudo-frequency below
    /// `cutoff_hz`. The paper's Fig. 7 observation corresponds to this being
    /// markedly higher during a ship passage.
    pub fn low_frequency_fraction(&self, cutoff_hz: f64) -> f64 {
        let mut low = 0.0;
        let mut total = 0.0;
        for (f, row) in self.frequencies.iter().zip(self.power.iter()) {
            let e: f64 = row.iter().sum();
            total += e;
            if *f < cutoff_hz {
                low += e;
            }
        }
        if total > 0.0 {
            low / total
        } else {
            0.0
        }
    }
}

/// Morlet continuous wavelet transform planner.
///
/// # Examples
///
/// ```
/// use sid_dsp::{Morlet, MorletConfig};
///
/// let cwt = Morlet::new(MorletConfig::new(50.0))?;
/// let signal: Vec<f64> = (0..512)
///     .map(|i| (2.0 * std::f64::consts::PI * 0.5 * i as f64 / 50.0).sin())
///     .collect();
/// let scalogram = cwt.scalogram(&signal, &[0.25, 0.5, 1.0, 2.0])?;
/// assert_eq!(scalogram.frequencies.len(), 4);
/// # Ok::<(), sid_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Morlet {
    config: MorletConfig,
}

impl Morlet {
    /// Creates a Morlet CWT planner.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `omega0`, `sample_rate` or
    /// `truncation_sigmas` is not positive.
    pub fn new(config: MorletConfig) -> DspResult<Self> {
        if !(config.omega0 > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "omega0",
                reason: "must be positive",
            });
        }
        if !(config.sample_rate > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if !(config.truncation_sigmas > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "truncation_sigmas",
                reason: "must be positive",
            });
        }
        Ok(Morlet { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &MorletConfig {
        &self.config
    }

    /// Scale (in seconds) whose pseudo-frequency is `freq_hz`.
    ///
    /// For the Morlet wavelet, pseudo-frequency `f = ω₀ / (2π·scale)`.
    pub fn scale_for_frequency(&self, freq_hz: f64) -> f64 {
        self.config.omega0 / (2.0 * std::f64::consts::PI * freq_hz)
    }

    /// Transforms `signal` at a single pseudo-frequency, returning the
    /// complex coefficients per sample.
    ///
    /// # Errors
    ///
    /// * [`DspError::EmptyInput`] for an empty signal.
    /// * [`DspError::InvalidParameter`] if `freq_hz` is not positive.
    pub fn transform_at(&self, signal: &[f64], freq_hz: f64) -> DspResult<Vec<Complex>> {
        let mut kernel = Vec::new();
        let mut out = Vec::new();
        self.transform_at_into(signal, freq_hz, &mut kernel, &mut out)?;
        Ok(out)
    }

    /// [`Morlet::transform_at`] with caller-provided kernel and output
    /// buffers, so a multi-scale loop ([`Morlet::scalogram`]) performs no
    /// per-scale allocation once the buffers have grown to the largest
    /// kernel. Both buffers are overwritten; results are identical to
    /// `transform_at`.
    ///
    /// # Errors
    ///
    /// * [`DspError::EmptyInput`] for an empty signal.
    /// * [`DspError::InvalidParameter`] if `freq_hz` is not positive.
    pub fn transform_at_into(
        &self,
        signal: &[f64],
        freq_hz: f64,
        kernel: &mut Vec<Complex>,
        out: &mut Vec<Complex>,
    ) -> DspResult<()> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if !(freq_hz > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "freq_hz",
                reason: "must be positive",
            });
        }
        let fs = self.config.sample_rate;
        let scale_s = self.scale_for_frequency(freq_hz);
        let scale = scale_s * fs; // scale in samples
        let half = (self.config.truncation_sigmas * scale).ceil() as usize;
        let half = half.max(1);
        // Kernel: conj of ψ((t−τ)/s)/√s evaluated at integer offsets.
        let norm = std::f64::consts::PI.powf(-0.25) / scale.sqrt();
        kernel.clear();
        kernel.extend((-(half as isize)..=half as isize).map(|dt| {
            let u = dt as f64 / scale;
            let gauss = (-0.5 * u * u).exp();
            Complex::cis(-self.config.omega0 * u).scale(norm * gauss)
        }));
        out.clear();
        out.resize(signal.len(), Complex::ZERO);
        for (t, o) in out.iter_mut().enumerate() {
            let mut acc = Complex::ZERO;
            let lo = t.saturating_sub(half);
            let hi = (t + half).min(signal.len() - 1);
            // kernel index for sample j is (j - t) + half
            for (j, &x) in signal.iter().enumerate().take(hi + 1).skip(lo) {
                acc += kernel[(j + half) - t].scale(x);
            }
            *o = acc;
        }
        Ok(())
    }

    /// Computes the power scalogram over the given pseudo-frequencies (Hz).
    ///
    /// # Errors
    ///
    /// * [`DspError::EmptyInput`] if `signal` or `frequencies` is empty.
    /// * [`DspError::InvalidParameter`] for non-positive frequencies.
    pub fn scalogram(&self, signal: &[f64], frequencies: &[f64]) -> DspResult<Scalogram> {
        if frequencies.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let mut power = Vec::with_capacity(frequencies.len());
        let mut kernel = Vec::new();
        let mut coeffs = Vec::new();
        for &f in frequencies {
            self.transform_at_into(signal, f, &mut kernel, &mut coeffs)?;
            power.push(coeffs.iter().map(|z| z.norm_sqr()).collect());
        }
        Ok(Scalogram {
            frequencies: frequencies.to_vec(),
            power,
            sample_rate: self.config.sample_rate,
        })
    }

    /// Per-scale wavelet band energies evaluated in the frequency domain
    /// (Parseval) from a one-sided spectrum, skipping the time-domain
    /// convolution entirely.
    ///
    /// `spectrum` must be the one-sided transform (`fft_len/2 + 1` bins)
    /// of the *unwindowed* signal, e.g. from [`crate::RealFft`]. For each
    /// pseudo-frequency the analytic Morlet response
    /// `|Ĥ_s(ω)|² = 2π·s·π^{-1/2}·e^{-(ω₀ - s·ω)²}` (ω in rad/sample,
    /// `s` the scale in samples) is integrated against `|X(ω)|²`:
    ///
    /// `E_s ≈ (1/N) Σ_k |X_k|²·|Ĥ_s(ω_k)|²`
    ///
    /// which equals the total time-domain power `Σ_t |CWT_s[t]|²` of the
    /// corresponding [`Morlet::transform_at`] row up to three documented
    /// approximations: the kernel there is truncated at
    /// `truncation_sigmas` and boundary-clipped (linear, not circular,
    /// convolution), and the negligible negative-frequency lobe of the
    /// analytic response (relative weight `e^{-2ω₀²}` ≈ 5e-32 at ω₀ = 6)
    /// is dropped here. For kernels short relative to the signal the
    /// agreement is a few percent; scales whose kernel exceeds the signal
    /// length lose boundary energy in the time-domain path and can differ
    /// more. Band *ratios* (e.g. [`low_band_fraction`]) are stable to
    /// within a few hundredths — the DST front-end oracle enforces this.
    ///
    /// # Errors
    ///
    /// * [`DspError::EmptyInput`] if `spectrum` or `frequencies` is empty.
    /// * [`DspError::NotPowerOfTwo`] if `fft_len` is not a power of two.
    /// * [`DspError::LengthMismatch`] if `spectrum.len() != fft_len/2 + 1`.
    /// * [`DspError::InvalidParameter`] for non-positive frequencies.
    pub fn spectral_band_energies(
        &self,
        spectrum: &[Complex],
        fft_len: usize,
        frequencies: &[f64],
    ) -> DspResult<Vec<f64>> {
        if spectrum.is_empty() || frequencies.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if !fft_len.is_power_of_two() {
            return Err(DspError::NotPowerOfTwo { len: fft_len });
        }
        let half = fft_len / 2;
        if spectrum.len() != half + 1 {
            return Err(DspError::LengthMismatch {
                expected: half + 1,
                actual: spectrum.len(),
            });
        }
        let fs = self.config.sample_rate;
        let omega0 = self.config.omega0;
        let n = fft_len as f64;
        let mut energies = Vec::with_capacity(frequencies.len());
        for &f in frequencies {
            if !(f > 0.0) {
                return Err(DspError::InvalidParameter {
                    name: "frequencies",
                    reason: "must be positive",
                });
            }
            let scale = self.scale_for_frequency(f) * fs; // samples
            // |Ĥ(ω)|² = amp²·e^{-(ω₀-sω)²}; amp = π^{-1/4}·√s·√(2π).
            let amp_sq = scale * (2.0 * std::f64::consts::PI) / std::f64::consts::PI.sqrt();
            // The Gaussian is below 1e-35 of its peak once |ω₀-sω| > 9;
            // restrict to the bins that matter.
            let lo_bin = (n * (omega0 - 9.0) / (std::f64::consts::TAU * scale))
                .floor()
                .max(0.0) as usize;
            let hi_bin =
                ((n * (omega0 + 9.0) / (std::f64::consts::TAU * scale)).ceil() as usize).min(half);
            let mut e = 0.0;
            for (k, z) in spectrum
                .iter()
                .enumerate()
                .take(hi_bin + 1)
                .skip(lo_bin)
            {
                let omega = std::f64::consts::TAU * k as f64 / n;
                let arg = omega0 - scale * omega;
                e += z.norm_sqr() * amp_sq * (-(arg * arg)).exp();
            }
            energies.push(e / n);
        }
        Ok(energies)
    }

    /// Logarithmically spaced frequency ladder from `lo` to `hi` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `lo` or `hi` is not positive, `hi <= lo`, or `count < 2`.
    pub fn log_frequencies(lo: f64, hi: f64, count: usize) -> Vec<f64> {
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
        assert!(count >= 2, "need at least two frequencies");
        let ratio = (hi / lo).ln();
        (0..count)
            .map(|i| lo * (ratio * i as f64 / (count - 1) as f64).exp())
            .collect()
    }
}

/// Fraction of total energy carried by entries whose frequency is below
/// `cutoff_hz` — the spectral-path counterpart of
/// [`Scalogram::low_frequency_fraction`], operating on the per-scale
/// energies returned by [`Morlet::spectral_band_energies`]. Returns 0.0
/// when the total energy is zero.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Examples
///
/// ```
/// use sid_dsp::low_band_fraction;
/// let freqs = [0.2, 0.5, 2.0];
/// let energies = [3.0, 1.0, 1.0];
/// assert!((low_band_fraction(&freqs, &energies, 1.0) - 0.8).abs() < 1e-12);
/// ```
pub fn low_band_fraction(frequencies: &[f64], energies: &[f64], cutoff_hz: f64) -> f64 {
    assert_eq!(
        frequencies.len(),
        energies.len(),
        "frequencies and energies must pair up"
    );
    let mut low = 0.0;
    let mut total = 0.0;
    for (f, e) in frequencies.iter().zip(energies.iter()) {
        total += e;
        if *f < cutoff_hz {
            low += e;
        }
    }
    if total > 0.0 {
        low / total
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Morlet::new(MorletConfig {
            omega0: 0.0,
            ..MorletConfig::new(50.0)
        })
        .is_err());
        assert!(Morlet::new(MorletConfig {
            sample_rate: -1.0,
            ..MorletConfig::new(50.0)
        })
        .is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        let m = Morlet::new(MorletConfig::new(50.0)).unwrap();
        assert!(m.transform_at(&[], 1.0).is_err());
        assert!(m.transform_at(&[1.0], 0.0).is_err());
        assert!(m.scalogram(&[1.0, 2.0], &[]).is_err());
    }

    #[test]
    fn scale_frequency_inverse_relation() {
        let m = Morlet::new(MorletConfig::new(50.0)).unwrap();
        let s1 = m.scale_for_frequency(1.0);
        let s2 = m.scale_for_frequency(2.0);
        assert!((s1 / s2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tone_energy_peaks_at_its_own_frequency() {
        let fs = 50.0;
        let m = Morlet::new(MorletConfig::new(fs)).unwrap();
        let sig = tone(1.0, fs, 2000);
        let freqs = [0.25, 0.5, 1.0, 2.0, 4.0];
        let sc = m.scalogram(&sig, &freqs).unwrap();
        let means = sc.mean_power_per_frequency();
        let best = means
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(freqs[best], 1.0);
    }

    #[test]
    fn low_frequency_fraction_reflects_band() {
        let fs = 50.0;
        let m = Morlet::new(MorletConfig::new(fs)).unwrap();
        let low_sig = tone(0.3, fs, 3000);
        let freqs = Morlet::log_frequencies(0.1, 5.0, 12);
        let sc = m.scalogram(&low_sig, &freqs).unwrap();
        assert!(sc.low_frequency_fraction(1.0) > 0.8);

        let high_sig = tone(4.0, fs, 3000);
        let sc = m.scalogram(&high_sig, &freqs).unwrap();
        assert!(sc.low_frequency_fraction(1.0) < 0.3);
    }

    #[test]
    fn log_frequency_ladder_endpoints_and_monotonicity() {
        let f = Morlet::log_frequencies(0.1, 10.0, 9);
        assert!((f[0] - 0.1).abs() < 1e-12);
        assert!((f[8] - 10.0).abs() < 1e-9);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "need 0 < lo < hi")]
    fn log_frequencies_rejects_bad_range() {
        Morlet::log_frequencies(1.0, 0.5, 4);
    }

    #[test]
    fn localisation_in_time() {
        // Burst in the middle third only: wavelet power there should dwarf
        // power in the silent first third.
        let fs = 50.0;
        let n = 1500;
        let mut sig = vec![0.0; n];
        for (i, s) in sig.iter_mut().enumerate().take(1000).skip(500) {
            *s = (2.0 * PI * 1.0 * i as f64 / fs).sin();
        }
        let m = Morlet::new(MorletConfig::new(fs)).unwrap();
        let coeffs = m.transform_at(&sig, 1.0).unwrap();
        let early: f64 = coeffs[..400].iter().map(|z| z.norm_sqr()).sum();
        let mid: f64 = coeffs[550..950].iter().map(|z| z.norm_sqr()).sum();
        assert!(mid > 50.0 * early.max(1e-12));
    }

    #[test]
    fn buffer_reuse_matches_allocating_variant() {
        let m = Morlet::new(MorletConfig::new(50.0)).unwrap();
        let sig = tone(0.7, 50.0, 400);
        let mut kernel = Vec::new();
        let mut out = Vec::new();
        // Descending frequencies grow the kernel between calls; results
        // must still match the fresh-allocation path exactly.
        for f in [4.0, 1.0, 0.25] {
            m.transform_at_into(&sig, f, &mut kernel, &mut out).unwrap();
            assert_eq!(out, m.transform_at(&sig, f).unwrap(), "freq {f}");
        }
    }

    #[test]
    fn spectral_energies_match_time_domain_for_interior_scales() {
        // On-resonance rows with bin-aligned tones (periodic over the
        // record, so circular == linear up to edge clipping): the
        // Parseval path should agree with the convolution path to a few
        // percent. Far-off-resonance rows are NOT compared — there the
        // kernel's 4σ truncation distorts the tiny Gaussian tail by
        // design (see the method docs).
        let fs = 50.0;
        let n = 4096usize;
        let m = Morlet::new(MorletConfig::new(fs)).unwrap();
        let f1 = 66.0 * fs / n as f64; // ≈ 0.806 Hz, exactly bin 66
        let f2 = 205.0 * fs / n as f64; // ≈ 2.502 Hz, exactly bin 205
        let sig: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (2.0 * PI * f1 * t).sin() + 0.5 * (2.0 * PI * f2 * t).cos()
            })
            .collect();
        let freqs = [f1, f2];
        let sc = m.scalogram(&sig, &freqs).unwrap();
        let spectrum = crate::rfft::rfft_plan(n).unwrap().forward(&sig).unwrap();
        let spectral = m.spectral_band_energies(&spectrum, n, &freqs).unwrap();
        for (i, &f) in freqs.iter().enumerate() {
            let time_e: f64 = sc.power[i].iter().sum();
            let rel = (spectral[i] - time_e).abs() / time_e.max(1e-12);
            assert!(
                rel < 0.1,
                "freq {f}: spectral {} vs time {} (rel {rel})",
                spectral[i],
                time_e
            );
        }
    }

    #[test]
    fn spectral_low_band_fraction_tracks_scalogram() {
        let fs = 50.0;
        let n = 4096;
        let m = Morlet::new(MorletConfig::new(fs)).unwrap();
        let freqs = Morlet::log_frequencies(0.1, 5.0, 12);
        let plan = crate::rfft::rfft_plan(n).unwrap();
        for (tone_hz, expect_low) in [(0.3f64, true), (4.0, false)] {
            let sig = tone(tone_hz, fs, n);
            let sc = m.scalogram(&sig, &freqs).unwrap();
            let spectrum = plan.forward(&sig).unwrap();
            let energies = m.spectral_band_energies(&spectrum, n, &freqs).unwrap();
            let spectral = low_band_fraction(&freqs, &energies, 1.0);
            let time = sc.low_frequency_fraction(1.0);
            assert!(
                (spectral - time).abs() < 0.05,
                "tone {tone_hz}: spectral {spectral} vs time {time}"
            );
            if expect_low {
                assert!(spectral > 0.8);
            } else {
                assert!(spectral < 0.3);
            }
        }
    }

    #[test]
    fn spectral_energies_validate_inputs() {
        let m = Morlet::new(MorletConfig::new(50.0)).unwrap();
        let spectrum = vec![Complex::ZERO; 17];
        assert!(m.spectral_band_energies(&[], 32, &[1.0]).is_err());
        assert!(m.spectral_band_energies(&spectrum, 32, &[]).is_err());
        assert!(m.spectral_band_energies(&spectrum, 31, &[1.0]).is_err());
        assert!(m.spectral_band_energies(&spectrum, 64, &[1.0]).is_err());
        assert!(m.spectral_band_energies(&spectrum, 32, &[0.0]).is_err());
        assert!(m.spectral_band_energies(&spectrum, 32, &[1.0]).is_ok());
    }

    #[test]
    fn low_band_fraction_handles_zero_energy() {
        assert_eq!(low_band_fraction(&[0.5, 2.0], &[0.0, 0.0], 1.0), 0.0);
    }

    #[test]
    fn scalogram_shape_is_consistent() {
        let m = Morlet::new(MorletConfig::new(50.0)).unwrap();
        let sig = tone(1.0, 50.0, 300);
        let sc = m.scalogram(&sig, &[0.5, 1.0]).unwrap();
        assert_eq!(sc.power.len(), 2);
        assert_eq!(sc.len_time(), 300);
        assert_eq!(sc.frequencies, vec![0.5, 1.0]);
    }
}
