//! Digital filters: windowed-sinc FIR low-pass design and Butterworth
//! biquad IIR sections.
//!
//! The node-level detector (paper Section IV-B) "filters out the frequency
//! above 1 Hz" before thresholding; Fig. 8 shows the raw vs. filtered
//! signal. [`LowPassFir`] provides the offline zero-phase version used for
//! figure reproduction, and [`Biquad`]/[`butterworth_lowpass`] the causal
//! streaming version a sensor node would run.

use serde::{Deserialize, Serialize};

use crate::error::{DspError, DspResult};

/// A linear-phase FIR low-pass filter designed by the windowed-sinc method
/// (Hamming window).
///
/// # Examples
///
/// ```
/// use sid_dsp::LowPassFir;
///
/// let fir = LowPassFir::design(1.0, 50.0, 101)?;
/// let signal: Vec<f64> = (0..500)
///     .map(|i| {
///         let t = i as f64 / 50.0;
///         (2.0 * std::f64::consts::PI * 0.3 * t).sin()  // pass band
///             + (2.0 * std::f64::consts::PI * 8.0 * t).sin() // stop band
///     })
///     .collect();
/// let filtered = fir.filter_zero_phase(&signal);
/// assert_eq!(filtered.len(), signal.len());
/// # Ok::<(), sid_dsp::DspError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LowPassFir {
    taps: Vec<f64>,
    cutoff_hz: f64,
    sample_rate: f64,
}

impl LowPassFir {
    /// Designs a low-pass FIR with the given cutoff.
    ///
    /// `num_taps` should be odd for exact linear phase; even values are
    /// bumped up by one.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if the cutoff is not in
    /// `(0, sample_rate/2)` or `num_taps < 3`.
    pub fn design(cutoff_hz: f64, sample_rate: f64, num_taps: usize) -> DspResult<Self> {
        if !(sample_rate > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "sample_rate",
                reason: "must be positive",
            });
        }
        if !(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0) {
            return Err(DspError::InvalidParameter {
                name: "cutoff_hz",
                reason: "must be in (0, sample_rate/2)",
            });
        }
        if num_taps < 3 {
            return Err(DspError::InvalidParameter {
                name: "num_taps",
                reason: "must be at least 3",
            });
        }
        let num_taps = if num_taps.is_multiple_of(2) {
            num_taps + 1
        } else {
            num_taps
        };
        let fc = cutoff_hz / sample_rate; // normalised (cycles/sample)
        let mid = (num_taps / 2) as isize;
        let mut taps: Vec<f64> = (0..num_taps)
            .map(|i| {
                let n = i as isize - mid;
                let sinc = if n == 0 {
                    2.0 * fc
                } else {
                    (2.0 * std::f64::consts::PI * fc * n as f64).sin()
                        / (std::f64::consts::PI * n as f64)
                };
                let w = 0.54
                    - 0.46
                        * (2.0 * std::f64::consts::PI * i as f64 / (num_taps - 1) as f64).cos();
                sinc * w
            })
            .collect();
        // Normalise to unity DC gain.
        let sum: f64 = taps.iter().sum();
        for t in taps.iter_mut() {
            *t /= sum;
        }
        Ok(LowPassFir {
            taps,
            cutoff_hz,
            sample_rate,
        })
    }

    /// The filter's taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Design cutoff in Hz.
    pub fn cutoff_hz(&self) -> f64 {
        self.cutoff_hz
    }

    /// Causal convolution; output is delayed by `(taps-1)/2` samples.
    /// Edges are handled by treating out-of-range input as zero.
    pub fn filter(&self, signal: &[f64]) -> Vec<f64> {
        (0..signal.len())
            .map(|i| {
                let mut acc = 0.0;
                for (j, &h) in self.taps.iter().enumerate() {
                    if i >= j {
                        acc += h * signal[i - j];
                    }
                }
                acc
            })
            .collect()
    }

    /// Zero-phase filtering: causal convolution with the group delay
    /// compensated, so features stay time-aligned with the input (what an
    /// offline figure reproduction wants). Output length equals input
    /// length; edges use zero padding.
    pub fn filter_zero_phase(&self, signal: &[f64]) -> Vec<f64> {
        let delay = self.taps.len() / 2;
        let n = signal.len();
        (0..n)
            .map(|i| {
                let centre = i + delay;
                let mut acc = 0.0;
                for (j, &h) in self.taps.iter().enumerate() {
                    if centre >= j && centre - j < n {
                        acc += h * signal[centre - j];
                    }
                }
                acc
            })
            .collect()
    }
}

/// State of a single second-order IIR (biquad) section in direct form II
/// transposed — the causal, O(1)-memory filter a sensor node runs online.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    z1: f64,
    z2: f64,
}

impl Biquad {
    /// Creates a biquad from normalised coefficients (a0 = 1).
    pub fn from_coefficients(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Self {
        Biquad {
            b0,
            b1,
            b2,
            a1,
            a2,
            z1: 0.0,
            z2: 0.0,
        }
    }

    /// Processes one sample.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.z1;
        self.z1 = self.b1 * x - self.a1 * y + self.z2;
        self.z2 = self.b2 * x - self.a2 * y;
        y
    }

    /// Resets the delay line to zero.
    pub fn reset(&mut self) {
        self.z1 = 0.0;
        self.z2 = 0.0;
    }

    /// Filters a whole buffer, returning the output.
    pub fn process_buffer(&mut self, signal: &[f64]) -> Vec<f64> {
        signal.iter().map(|&x| self.process(x)).collect()
    }
}

/// Designs a second-order Butterworth low-pass biquad via the bilinear
/// transform.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `cutoff_hz` is not in
/// `(0, sample_rate/2)`.
///
/// # Examples
///
/// ```
/// use sid_dsp::butterworth_lowpass;
/// let mut f = butterworth_lowpass(1.0, 50.0)?;
/// let y = f.process(1.0);
/// assert!(y.is_finite());
/// # Ok::<(), sid_dsp::DspError>(())
/// ```
pub fn butterworth_lowpass(cutoff_hz: f64, sample_rate: f64) -> DspResult<Biquad> {
    if !(sample_rate > 0.0) {
        return Err(DspError::InvalidParameter {
            name: "sample_rate",
            reason: "must be positive",
        });
    }
    if !(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0) {
        return Err(DspError::InvalidParameter {
            name: "cutoff_hz",
            reason: "must be in (0, sample_rate/2)",
        });
    }
    let k = (std::f64::consts::PI * cutoff_hz / sample_rate).tan();
    let q = std::f64::consts::FRAC_1_SQRT_2; // Butterworth Q
    let norm = 1.0 / (1.0 + k / q + k * k);
    let b0 = k * k * norm;
    let b1 = 2.0 * b0;
    let b2 = b0;
    let a1 = 2.0 * (k * k - 1.0) * norm;
    let a2 = (1.0 - k / q + k * k) * norm;
    Ok(Biquad::from_coefficients(b0, b1, b2, a1, a2))
}

/// A cascade of biquad sections forming a higher-order IIR filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiquadCascade {
    sections: Vec<Biquad>,
}

impl BiquadCascade {
    /// Builds a cascade from individual sections.
    pub fn new(sections: Vec<Biquad>) -> Self {
        BiquadCascade { sections }
    }

    /// Processes one sample through every section in order.
    #[inline]
    pub fn process(&mut self, x: f64) -> f64 {
        self.sections.iter_mut().fold(x, |acc, s| s.process(acc))
    }

    /// Filters a whole buffer.
    pub fn process_buffer(&mut self, signal: &[f64]) -> Vec<f64> {
        signal.iter().map(|&x| self.process(x)).collect()
    }

    /// Resets every section's delay line.
    pub fn reset(&mut self) {
        for s in &mut self.sections {
            s.reset();
        }
    }
}

/// Designs a fourth-order Butterworth low-pass as two cascaded biquads
/// (section Qs 0.5412 and 1.3066). The steeper 24 dB/octave roll-off is
/// what the SID preprocessing needs to keep >1 Hz harbor chop out of the
/// detection band.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `cutoff_hz` is not in
/// `(0, sample_rate/2)`.
pub fn butterworth_lowpass_order4(cutoff_hz: f64, sample_rate: f64) -> DspResult<BiquadCascade> {
    if !(sample_rate > 0.0) {
        return Err(DspError::InvalidParameter {
            name: "sample_rate",
            reason: "must be positive",
        });
    }
    if !(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0) {
        return Err(DspError::InvalidParameter {
            name: "cutoff_hz",
            reason: "must be in (0, sample_rate/2)",
        });
    }
    let k = (std::f64::consts::PI * cutoff_hz / sample_rate).tan();
    let section = |q: f64| {
        let norm = 1.0 / (1.0 + k / q + k * k);
        let b0 = k * k * norm;
        Biquad::from_coefficients(
            b0,
            2.0 * b0,
            b0,
            2.0 * (k * k - 1.0) * norm,
            (1.0 - k / q + k * k) * norm,
        )
    };
    // Butterworth pole Qs for order 4.
    Ok(BiquadCascade::new(vec![section(0.54119610), section(1.30656296)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * freq * i as f64 / fs).sin())
            .collect()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn fir_design_validates_parameters() {
        assert!(LowPassFir::design(0.0, 50.0, 11).is_err());
        assert!(LowPassFir::design(30.0, 50.0, 11).is_err());
        assert!(LowPassFir::design(1.0, 0.0, 11).is_err());
        assert!(LowPassFir::design(1.0, 50.0, 2).is_err());
    }

    #[test]
    fn fir_even_taps_bumped_to_odd() {
        let f = LowPassFir::design(1.0, 50.0, 100).unwrap();
        assert_eq!(f.taps().len(), 101);
    }

    #[test]
    fn fir_unity_dc_gain() {
        let f = LowPassFir::design(1.0, 50.0, 101).unwrap();
        let sum: f64 = f.taps().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Constant input (interior) stays constant.
        let y = f.filter_zero_phase(&vec![2.5; 400]);
        assert!((y[200] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn fir_passes_low_and_rejects_high() {
        let fs = 50.0;
        let f = LowPassFir::design(1.0, fs, 201).unwrap();
        let low = f.filter_zero_phase(&tone(0.3, fs, 2000));
        let high = f.filter_zero_phase(&tone(8.0, fs, 2000));
        // Trim edges before measuring.
        let low_rms = rms(&low[300..1700]);
        let high_rms = rms(&high[300..1700]);
        assert!(low_rms > 0.65, "passband attenuated: {low_rms}");
        assert!(high_rms < 0.02, "stopband leaked: {high_rms}");
    }

    #[test]
    fn fir_zero_phase_keeps_alignment() {
        let fs = 50.0;
        let f = LowPassFir::design(2.0, fs, 151).unwrap();
        let sig = tone(0.5, fs, 1000);
        let y = f.filter_zero_phase(&sig);
        // Cross-correlation at zero lag should be near the signal's energy;
        // i.e. no delay shift.
        let dot: f64 = sig[200..800].iter().zip(&y[200..800]).map(|(a, b)| a * b).sum();
        let e: f64 = sig[200..800].iter().map(|v| v * v).sum();
        assert!(dot / e > 0.95);
    }

    #[test]
    fn causal_fir_delays_by_half_taps() {
        let f = LowPassFir::design(5.0, 50.0, 21).unwrap();
        let mut impulse = vec![0.0; 64];
        impulse[0] = 1.0;
        let y = f.filter(&impulse);
        // Peak of the impulse response at the group delay.
        let peak = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 10);
    }

    #[test]
    fn butterworth_validates_parameters() {
        assert!(butterworth_lowpass(0.0, 50.0).is_err());
        assert!(butterworth_lowpass(25.0, 50.0).is_err());
        assert!(butterworth_lowpass(1.0, -5.0).is_err());
    }

    #[test]
    fn butterworth_passband_and_stopband() {
        let fs = 50.0;
        let mut f = butterworth_lowpass(1.0, fs).unwrap();
        let low = f.process_buffer(&tone(0.2, fs, 3000));
        f.reset();
        let high = f.process_buffer(&tone(10.0, fs, 3000));
        assert!(rms(&low[1000..]) > 0.6);
        assert!(rms(&high[1000..]) < 0.01);
    }

    #[test]
    fn butterworth_dc_gain_is_unity() {
        let mut f = butterworth_lowpass(1.0, 50.0).unwrap();
        let y = f.process_buffer(&vec![1.0; 2000]);
        assert!((y[1999] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn biquad_reset_clears_state() {
        let mut f = butterworth_lowpass(1.0, 50.0).unwrap();
        f.process_buffer(&vec![1.0; 100]);
        f.reset();
        let y0 = f.process(0.0);
        assert_eq!(y0, 0.0);
    }

    #[test]
    fn order4_rolls_off_steeper_than_order2() {
        let fs = 50.0;
        let mut f2 = butterworth_lowpass(1.0, fs).unwrap();
        let mut f4 = butterworth_lowpass_order4(1.0, fs).unwrap();
        // At 1.5× cutoff, the 4th-order filter attenuates much harder.
        let sig = tone(1.5, fs, 5000);
        let g2 = rms(&f2.process_buffer(&sig)[2000..]);
        let g4 = rms(&f4.process_buffer(&sig)[2000..]);
        assert!(g4 < 0.6 * g2, "order4 {g4} vs order2 {g2}");
        // Passband (0.2 Hz) survives with ~unity gain.
        f4.reset();
        let pass = rms(&f4.process_buffer(&tone(0.2, fs, 5000))[2000..]);
        assert!((pass - 1.0 / 2f64.sqrt()).abs() < 0.05, "passband {pass}");
    }

    #[test]
    fn order4_dc_gain_is_unity() {
        let mut f = butterworth_lowpass_order4(1.0, 50.0).unwrap();
        let y = f.process_buffer(&vec![1.0; 3000]);
        assert!((y[2999] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn order4_reset_clears_all_sections() {
        let mut f = butterworth_lowpass_order4(1.0, 50.0).unwrap();
        f.process_buffer(&vec![5.0; 200]);
        f.reset();
        assert_eq!(f.process(0.0), 0.0);
    }

    #[test]
    fn order4_validates_parameters() {
        assert!(butterworth_lowpass_order4(0.0, 50.0).is_err());
        assert!(butterworth_lowpass_order4(25.0, 50.0).is_err());
    }

    #[test]
    fn butterworth_minus_3db_near_cutoff() {
        let fs = 50.0;
        let fc = 2.0;
        let mut f = butterworth_lowpass(fc, fs).unwrap();
        let y = f.process_buffer(&tone(fc, fs, 5000));
        let gain = rms(&y[2000..]) / (1.0 / 2f64.sqrt());
        // -3 dB → amplitude ratio 0.707 of a unit sine's RMS.
        assert!((gain - 0.707).abs() < 0.05, "gain at cutoff {gain}");
    }
}
