//! Error type shared by the DSP routines.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by DSP routines when their input contract is violated.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DspError {
    /// The transform length must be a power of two, but was not.
    NotPowerOfTwo {
        /// Offending length.
        len: usize,
    },
    /// The input was empty where at least one sample is required.
    EmptyInput,
    /// Two buffers that must agree in length did not.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A numeric parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: &'static str,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::NotPowerOfTwo { len } => {
                write!(f, "transform length {len} is not a power of two")
            }
            DspError::EmptyInput => write!(f, "input signal is empty"),
            DspError::LengthMismatch { expected, actual } => {
                write!(f, "buffer length mismatch: expected {expected}, got {actual}")
            }
            DspError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl StdError for DspError {}

/// Convenience alias for results of DSP routines.
pub type DspResult<T> = Result<T, DspError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DspError::NotPowerOfTwo { len: 12 };
        assert_eq!(e.to_string(), "transform length 12 is not a power of two");
        let e = DspError::LengthMismatch {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 4"));
        let e = DspError::InvalidParameter {
            name: "cutoff",
            reason: "must be in (0, nyquist)",
        };
        assert!(e.to_string().contains("cutoff"));
        assert_eq!(DspError::EmptyInput.to_string(), "input signal is empty");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
