//! Analytic-signal envelope (Hilbert transform).
//!
//! The SID anomaly frequency counts threshold crossings per sample; a
//! rectified narrowband carrier dips through zero twice per cycle, capping
//! the achievable `af` below 1. Envelope detection removes the carrier:
//! `|x_a(t)|` with `x_a` the analytic signal tracks the wave-train
//! envelope directly. Offline the exact FFT construction is used; the
//! streaming detector approximates it with a crossing hold
//! (`DetectorConfig::crossing_hold_samples` in `sid-core`).

use crate::complex::Complex;
use crate::error::{DspError, DspResult};
use crate::fft::fft_plan;

/// Computes the envelope `|x_a(t)|` of a real signal via the analytic
/// signal (FFT method). The signal is zero-padded to a power of two
/// internally; the returned envelope has the input length.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
///
/// # Examples
///
/// ```
/// use sid_dsp::hilbert_envelope;
/// // An amplitude-modulated tone: the envelope recovers the modulation.
/// let fs = 50.0;
/// let sig: Vec<f64> = (0..1024)
///     .map(|i| {
///         let t = i as f64 / fs;
///         (1.0 + 0.5 * (0.2 * t).sin()) * (2.0 * std::f64::consts::PI * 5.0 * t).cos()
///     })
///     .collect();
/// let env = hilbert_envelope(&sig)?;
/// assert_eq!(env.len(), sig.len());
/// // Envelope stays near 1 ± 0.5, never dipping to the carrier zeros.
/// assert!(env[200..800].iter().all(|&e| e > 0.4));
/// # Ok::<(), sid_dsp::DspError>(())
/// ```
pub fn hilbert_envelope(signal: &[f64]) -> DspResult<Vec<f64>> {
    let mut envelope = Vec::new();
    hilbert_envelope_into(signal, &mut Vec::new(), &mut envelope)?;
    Ok(envelope)
}

/// [`hilbert_envelope`] with caller-owned buffers: `scratch` holds the
/// padded analytic spectrum, `envelope` receives the result (cleared and
/// refilled). A loop over many windows performs no per-call allocation
/// once the buffers are warm, and the FFT plan comes from the process
/// cache ([`crate::fft_plan`]) instead of being rebuilt per call.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
///
/// # Examples
///
/// ```
/// use sid_dsp::{hilbert_envelope, hilbert_envelope_into};
/// let sig: Vec<f64> = (0..256).map(|i| (i as f64 * 0.3).sin()).collect();
/// let mut scratch = Vec::new();
/// let mut env = Vec::new();
/// hilbert_envelope_into(&sig, &mut scratch, &mut env)?;
/// assert_eq!(env, hilbert_envelope(&sig)?);
/// # Ok::<(), sid_dsp::DspError>(())
/// ```
pub fn hilbert_envelope_into(
    signal: &[f64],
    scratch: &mut Vec<Complex>,
    envelope: &mut Vec<f64>,
) -> DspResult<()> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = signal.len().next_power_of_two();
    scratch.clear();
    scratch.reserve(n);
    scratch.extend(signal.iter().map(|&x| Complex::from_real(x)));
    scratch.resize(n, Complex::ZERO);
    let fft = fft_plan(n)?;
    fft.forward(scratch)?;
    // Analytic signal: keep DC and Nyquist, double positive frequencies,
    // zero the negative ones.
    for (k, z) in scratch.iter_mut().enumerate() {
        if k == 0 || k == n / 2 {
            // unchanged
        } else if k < n / 2 {
            *z = z.scale(2.0);
        } else {
            *z = Complex::ZERO;
        }
    }
    fft.inverse(scratch)?;
    envelope.clear();
    envelope.extend(scratch[..signal.len()].iter().map(|z| z.norm()));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn envelope_of_pure_tone_is_flat() {
        let fs = 50.0;
        let sig: Vec<f64> = (0..1024).map(|i| (TAU * 5.0 * i as f64 / fs).cos()).collect();
        let env = hilbert_envelope(&sig).unwrap();
        // Interior (away from edge effects): envelope ≈ 1.
        for &e in &env[100..900] {
            assert!((e - 1.0).abs() < 0.02, "envelope {e}");
        }
    }

    #[test]
    fn envelope_tracks_gaussian_burst() {
        let fs = 50.0;
        let sig: Vec<f64> = (0..1024)
            .map(|i| {
                let t = i as f64 / fs;
                let env = (-0.5 * ((t - 10.0) / 2.0f64).powi(2)).exp();
                env * (TAU * 2.0 * t).sin()
            })
            .collect();
        let env = hilbert_envelope(&sig).unwrap();
        // Envelope peak near t = 10 s (sample 500), close to 1.
        let (peak_idx, peak) = env
            .iter()
            .enumerate()
            .fold((0, 0.0), |acc, (i, &e)| if e > acc.1 { (i, e) } else { acc });
        assert!((peak_idx as f64 / fs - 10.0).abs() < 0.5, "peak at {peak_idx}");
        assert!((peak - 1.0).abs() < 0.05, "peak {peak}");
        // Unlike the rectified carrier, the envelope has no zero dips at
        // the burst centre.
        assert!(env[480..520].iter().all(|&e| e > 0.8));
    }

    #[test]
    fn envelope_never_below_rectified_signal() {
        let fs = 50.0;
        let sig: Vec<f64> = (0..512)
            .map(|i| {
                let t = i as f64 / fs;
                (TAU * 3.0 * t).sin() + 0.3 * (TAU * 7.0 * t).cos()
            })
            .collect();
        let env = hilbert_envelope(&sig).unwrap();
        for (x, e) in sig.iter().zip(env.iter()).skip(50).take(400) {
            assert!(*e >= x.abs() - 1e-6);
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(hilbert_envelope(&[]).is_err());
        assert!(hilbert_envelope_into(&[], &mut Vec::new(), &mut Vec::new()).is_err());
    }

    #[test]
    fn into_variant_reuses_buffers() {
        let sig: Vec<f64> = (0..300).map(|i| (i as f64 * 0.11).sin()).collect();
        let mut scratch = Vec::new();
        let mut env = Vec::new();
        hilbert_envelope_into(&sig, &mut scratch, &mut env).unwrap();
        let expected = hilbert_envelope(&sig).unwrap();
        assert_eq!(env, expected);
        let (cs, ce) = (scratch.capacity(), env.capacity());
        for _ in 0..3 {
            hilbert_envelope_into(&sig, &mut scratch, &mut env).unwrap();
            assert_eq!(env, expected);
        }
        assert_eq!(scratch.capacity(), cs);
        assert_eq!(env.capacity(), ce);
    }

    #[test]
    fn length_is_preserved_for_non_power_of_two() {
        let sig = vec![1.0; 300];
        assert_eq!(hilbert_envelope(&sig).unwrap().len(), 300);
    }
}
