//! Minimal complex-number arithmetic used by the FFT and wavelet kernels.
//!
//! The DSP substrate is dependency-free, so we carry our own [`Complex`]
//! type rather than pulling in `num-complex`. Only the operations the
//! transforms need are provided.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A complex number `re + i·im` over `f64`.
///
/// # Examples
///
/// ```
/// use sid_dsp::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sid_dsp::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Unit phasor `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`; cheaper than [`Complex::norm`] when only
    /// relative magnitudes matter (e.g. power spectra).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_accessors() {
        let z = Complex::new(1.5, -2.5);
        assert_eq!(z.re, 1.5);
        assert_eq!(z.im, -2.5);
        assert_eq!(Complex::from_real(3.0), Complex::new(3.0, 0.0));
        assert_eq!(Complex::from(4.0), Complex::new(4.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, PI / 3.0);
        assert!(close(z.norm(), 2.0));
        assert!(close(z.arg(), PI / 3.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        // (1+2i)(-3+0.5i) = -3 + 0.5i - 6i + i^2 = -4 - 5.5i
        assert_eq!(a * b, Complex::new(-4.0, -5.5));
        let q = (a * b) / b;
        assert!(close(q.re, a.re) && close(q.im, a.im));
    }

    #[test]
    fn conjugate_and_norms() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert!(close(z.norm(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
        let p = z * z.conj();
        assert!(close(p.re, 25.0) && close(p.im, 0.0));
    }

    #[test]
    fn unit_phasor_lies_on_circle() {
        for k in 0..16 {
            let theta = 2.0 * PI * k as f64 / 16.0;
            assert!(close(Complex::cis(theta).norm(), 1.0));
        }
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 0.7;
        let e = Complex::new(0.0, theta).exp();
        let c = Complex::cis(theta);
        assert!(close(e.re, c.re) && close(e.im, c.im));
    }

    #[test]
    fn compound_assignment() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::new(2.0, -1.0);
        assert_eq!(z, Complex::new(3.0, 0.0));
        z -= Complex::new(1.0, 0.0);
        assert_eq!(z, Complex::new(2.0, 0.0));
        z *= Complex::I;
        assert_eq!(z, Complex::new(0.0, 2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }

    #[test]
    fn nan_detection() {
        assert!(Complex::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex::new(0.0, 1.0).is_nan());
    }
}
