//! Iterative radix-2 fast Fourier transform.
//!
//! Implemented from scratch (the reproduction deliberately avoids external
//! DSP dependencies). The FFT is the decimation-in-time Cooley–Tukey
//! algorithm with a precomputed twiddle table, operating in place on
//! power-of-two-length buffers.
//!
//! Sign and scaling conventions follow the usual engineering definition:
//!
//! * forward: `X[k] = Σ_n x[n]·e^{-2πi·nk/N}` (no scaling),
//! * inverse: `x[n] = (1/N)·Σ_k X[k]·e^{+2πi·nk/N}`.

use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::{Arc, Mutex, OnceLock};

use crate::complex::Complex;
use crate::error::{DspError, DspResult};

/// A planned FFT of a fixed power-of-two size.
///
/// Planning precomputes the bit-reversal permutation and twiddle factors so
/// repeated transforms of the same size (as in an STFT) avoid redundant
/// trigonometry.
///
/// # Examples
///
/// ```
/// use sid_dsp::{Complex, Fft};
///
/// let fft = Fft::new(8)?;
/// let mut buf: Vec<Complex> = (0..8).map(|n| Complex::from_real(n as f64)).collect();
/// fft.forward(&mut buf)?;
/// fft.inverse(&mut buf)?;
/// assert!((buf[3].re - 3.0).abs() < 1e-12);
/// # Ok::<(), sid_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    rev: Vec<u32>,
    /// Twiddles for the forward transform: `e^{-2πi·k/N}` for `k < N/2`.
    twiddles: Vec<Complex>,
}

impl Fft {
    /// Plans an FFT of size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NotPowerOfTwo`] unless `n` is a power of two and
    /// at least 1.
    pub fn new(n: usize) -> DspResult<Self> {
        if n == 0 || !n.is_power_of_two() {
            return Err(DspError::NotPowerOfTwo { len: n });
        }
        let bits = n.trailing_zeros();
        // `n == 1` means a zero-bit permutation: `32 - bits` would be a full
        // 32-bit shift (overflow), so the identity table is written directly.
        let rev = if bits == 0 {
            vec![0]
        } else {
            (0..n as u32).map(|i| i.reverse_bits() >> (32 - bits)).collect()
        };
        let twiddles = (0..n / 2)
            .map(|k| Complex::cis(-2.0 * PI * k as f64 / n as f64))
            .collect();
        Ok(Fft { n, rev, twiddles })
    }

    /// The transform size this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the planned size is zero (never true for a
    /// successfully constructed plan).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn permute(&self, buf: &mut [Complex]) {
        for (i, &r) in self.rev.iter().enumerate() {
            let r = r as usize;
            if i < r {
                buf.swap(i, r);
            }
        }
    }

    fn transform(&self, buf: &mut [Complex], inverse: bool) -> DspResult<()> {
        if buf.len() != self.n {
            return Err(DspError::LengthMismatch {
                expected: self.n,
                actual: buf.len(),
            });
        }
        if self.n == 1 {
            return Ok(());
        }
        self.permute(buf);
        let mut size = 2;
        while size <= self.n {
            let half = size / 2;
            let step = self.n / size;
            for start in (0..self.n).step_by(size) {
                for k in 0..half {
                    let mut w = self.twiddles[k * step];
                    if inverse {
                        w = w.conj();
                    }
                    let even = buf[start + k];
                    let odd = buf[start + k + half] * w;
                    buf[start + k] = even + odd;
                    buf[start + k + half] = even - odd;
                }
            }
            size *= 2;
        }
        if inverse {
            let scale = 1.0 / self.n as f64;
            for z in buf.iter_mut() {
                *z = z.scale(scale);
            }
        }
        Ok(())
    }

    /// Computes the forward DFT in place.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `buf.len()` differs from the
    /// planned size.
    pub fn forward(&self, buf: &mut [Complex]) -> DspResult<()> {
        self.transform(buf, false)
    }

    /// Computes the inverse DFT in place (scaled by `1/N`).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `buf.len()` differs from the
    /// planned size.
    pub fn inverse(&self, buf: &mut [Complex]) -> DspResult<()> {
        self.transform(buf, true)
    }
}

/// Returns the process-wide cached FFT plan for size `n`, planning it on
/// first use.
///
/// Hot paths transform the same handful of sizes (2048-point STFT frames,
/// figure-length records) over and over from many threads; sharing one
/// immutable plan per size skips the twiddle/bit-reversal setup on every
/// call and costs one short mutex hold per lookup.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] for invalid sizes (those are never
/// cached).
///
/// # Examples
///
/// ```
/// use sid_dsp::fft_plan;
/// let a = fft_plan(2048)?;
/// let b = fft_plan(2048)?;
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// # Ok::<(), sid_dsp::DspError>(())
/// ```
pub fn fft_plan(n: usize) -> DspResult<Arc<Fft>> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Fft>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(plan) = map.get(&n) {
        return Ok(Arc::clone(plan));
    }
    let plan = Arc::new(Fft::new(n)?);
    map.insert(n, Arc::clone(&plan));
    Ok(plan)
}

/// Forward-transforms a real signal, zero-padding to the next power of two.
///
/// Returns the full complex spectrum (length = padded size). This is the
/// convenience entry point used by one-shot spectral analysis; for repeated
/// transforms build an [`Fft`] plan.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
///
/// # Examples
///
/// ```
/// use sid_dsp::fft_real;
/// let spectrum = fft_real(&[1.0, 0.0, 0.0, 0.0])?;
/// assert_eq!(spectrum.len(), 4);
/// // Impulse has a flat spectrum.
/// for bin in &spectrum {
///     assert!((bin.norm() - 1.0).abs() < 1e-12);
/// }
/// # Ok::<(), sid_dsp::DspError>(())
/// ```
pub fn fft_real(signal: &[f64]) -> DspResult<Vec<Complex>> {
    let mut buf = Vec::new();
    fft_real_into(signal, &mut buf)?;
    Ok(buf)
}

/// [`fft_real`] with a caller-owned output buffer: `buf` is cleared,
/// filled with the zero-padded signal and transformed in place, so a
/// loop over many records performs no per-call allocation once the
/// buffer has grown to the largest padded size.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal.
///
/// # Examples
///
/// ```
/// use sid_dsp::{fft_real, fft_real_into};
/// let sig = [0.5, -1.0, 2.0, 0.25, 1.5];
/// let mut buf = Vec::new();
/// fft_real_into(&sig, &mut buf)?;
/// assert_eq!(buf, fft_real(&sig)?);
/// # Ok::<(), sid_dsp::DspError>(())
/// ```
pub fn fft_real_into(signal: &[f64], buf: &mut Vec<Complex>) -> DspResult<()> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = signal.len().next_power_of_two();
    buf.clear();
    buf.reserve(n);
    buf.extend(signal.iter().map(|&x| Complex::from_real(x)));
    buf.resize(n, Complex::ZERO);
    fft_plan(n)?.forward(buf)?;
    Ok(())
}

/// Frequency (Hz) of bin `k` for a transform of size `n` at `sample_rate`.
///
/// Bins above `n/2` correspond to negative frequencies.
#[inline]
pub fn bin_frequency(k: usize, n: usize, sample_rate: f64) -> f64 {
    k as f64 * sample_rate / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|j| x[j] * Complex::cis(-2.0 * PI * (j * k) as f64 / n as f64))
                    .sum()
            })
            .collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(Fft::new(12).unwrap_err(), DspError::NotPowerOfTwo { len: 12 });
        assert_eq!(Fft::new(0).unwrap_err(), DspError::NotPowerOfTwo { len: 0 });
    }

    #[test]
    fn rejects_wrong_buffer_length() {
        let fft = Fft::new(8).unwrap();
        let mut buf = vec![Complex::ZERO; 4];
        assert!(matches!(
            fft.forward(&mut buf),
            Err(DspError::LengthMismatch { expected: 8, actual: 4 })
        ));
    }

    #[test]
    fn size_one_is_identity() {
        let fft = Fft::new(1).unwrap();
        let mut buf = vec![Complex::new(2.0, 3.0)];
        fft.forward(&mut buf).unwrap();
        assert_eq!(buf[0], Complex::new(2.0, 3.0));
        fft.inverse(&mut buf).unwrap();
        assert_eq!(buf[0], Complex::new(2.0, 3.0));
    }

    #[test]
    fn plan_cache_shares_one_plan_per_size() {
        let a = fft_plan(64).unwrap();
        let b = fft_plan(64).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 64);
        assert!(fft_plan(12).is_err());
        // Invalid sizes must not be cached as poisoned entries.
        assert!(fft_plan(12).is_err());
    }

    #[test]
    fn bit_reversal_table_is_exact_for_every_size() {
        // n = 1 is the degenerate case: a 0-bit permutation must be the
        // one-entry identity, not the result of a 32-bit shift.
        assert_eq!(Fft::new(1).unwrap().rev, vec![0]);
        assert_eq!(Fft::new(2).unwrap().rev, vec![0, 1]);
        assert_eq!(Fft::new(4).unwrap().rev, vec![0, 2, 1, 3]);
        assert_eq!(Fft::new(8).unwrap().rev, vec![0, 4, 2, 6, 1, 5, 3, 7]);
        // Any valid table is its own inverse (an involution) and a
        // permutation of 0..n.
        for &n in &[16usize, 64, 1024] {
            let rev = Fft::new(n).unwrap().rev;
            let mut seen = vec![false; n];
            for (i, &r) in rev.iter().enumerate() {
                assert_eq!(rev[r as usize] as usize, i, "n={n} i={i}");
                seen[r as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "n={n}: not a permutation");
        }
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[2usize, 4, 8, 16, 64] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let expected = naive_dft(&x);
            let mut buf = x.clone();
            Fft::new(n).unwrap().forward(&mut buf).unwrap();
            for (a, b) in buf.iter().zip(expected.iter()) {
                assert!((a.re - b.re).abs() < 1e-9, "n={n}");
                assert!((a.im - b.im).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 256;
        let fft = Fft::new(n).unwrap();
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let mut buf = orig.clone();
        fft.forward(&mut buf).unwrap();
        fft.inverse(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(orig.iter()) {
            assert!((a.re - b.re).abs() < 1e-10);
            assert!((a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 128;
        let k0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&x).unwrap();
        // Peak magnitude at k0 and n-k0, ~n/2 each.
        assert!((spec[k0].norm() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spec[n - k0].norm() - n as f64 / 2.0).abs() < 1e-9);
        for (k, bin) in spec.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(bin.norm() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 64;
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let spec = fft_real(&x).unwrap();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn real_input_spectrum_is_hermitian() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin() + 0.1).collect();
        let spec = fft_real(&x).unwrap();
        let n = spec.len();
        for k in 1..n / 2 {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a.re - b.re).abs() < 1e-9);
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_real_pads_to_power_of_two() {
        let spec = fft_real(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(spec.len(), 4);
        assert!(fft_real(&[]).is_err());
    }

    #[test]
    fn bin_frequency_mapping() {
        // 2048-point window at 50 Hz: the paper's STFT resolution.
        assert!((bin_frequency(1, 2048, 50.0) - 0.0244140625).abs() < 1e-12);
        assert_eq!(bin_frequency(0, 1024, 50.0), 0.0);
        assert_eq!(bin_frequency(1024, 2048, 50.0), 25.0);
    }
}
