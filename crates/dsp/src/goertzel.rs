//! Single-bin spectral estimation (Goertzel) and autocorrelation.
//!
//! Two light-weight kernels a mote can afford where a full FFT is
//! overkill: the Goertzel algorithm evaluates one DFT bin in O(N) with two
//! state variables (ideal for watching a known tonal, e.g. a propeller
//! blade rate), and the biased autocorrelation supports period estimation
//! of the dominant wave.

use crate::error::{DspError, DspResult};

/// Power of the DFT bin nearest `freq_hz` computed by the Goertzel
/// recursion, normalised like a one-sided periodogram bin (a unit-amplitude
/// sinusoid at the bin yields `N²/4` before normalisation; we return the
/// raw squared magnitude so callers can normalise as they see fit).
///
/// # Errors
///
/// * [`DspError::EmptyInput`] for an empty signal.
/// * [`DspError::InvalidParameter`] unless `0 < freq_hz < sample_rate/2`.
///
/// # Examples
///
/// ```
/// use sid_dsp::goertzel_power;
/// let fs = 50.0;
/// let sig: Vec<f64> = (0..500)
///     .map(|i| (2.0 * std::f64::consts::PI * 5.0 * i as f64 / fs).sin())
///     .collect();
/// let on = goertzel_power(&sig, 5.0, fs)?;
/// let off = goertzel_power(&sig, 12.0, fs)?;
/// assert!(on > 100.0 * off);
/// # Ok::<(), sid_dsp::DspError>(())
/// ```
pub fn goertzel_power(signal: &[f64], freq_hz: f64, sample_rate: f64) -> DspResult<f64> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !(freq_hz > 0.0 && freq_hz < sample_rate / 2.0) {
        return Err(DspError::InvalidParameter {
            name: "freq_hz",
            reason: "must be in (0, sample_rate/2)",
        });
    }
    let n = signal.len() as f64;
    // Snap to the nearest integer bin, as the classic algorithm assumes.
    let k = (freq_hz * n / sample_rate).round();
    let omega = std::f64::consts::TAU * k / n;
    let coeff = 2.0 * omega.cos();
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    for &x in signal {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    Ok(s1 * s1 + s2 * s2 - coeff * s1 * s2)
}

/// Summed raw power `Σ|X_k|²` of every DFT bin whose frequency
/// `k·fs/N` lies in `[lo_hz, hi_hz)` — the same bin-selection rule as
/// [`crate::SpectralFrame::band_power`] — evaluated with a single pass of
/// multi-bin Goertzel recursions in structure-of-arrays layout, so the
/// inner loop autovectorises across bins.
///
/// This is the ship-band fast path: when a caller only needs a band
/// energy (eq. 4's band-rise test), it replaces a full windowed FFT with
/// O(N·bins) work on the raw signal. Values are *unwindowed* and
/// *unnormalised* (no one-sided doubling); ratios of band powers from
/// the same signal length are directly comparable, absolute values are
/// not comparable to [`crate::SpectralFrame::band_power`].
///
/// # Errors
///
/// * [`DspError::EmptyInput`] for an empty signal.
/// * [`DspError::InvalidParameter`] unless
///   `0 ≤ lo_hz < hi_hz ≤ sample_rate/2` with `sample_rate > 0`.
///
/// # Examples
///
/// ```
/// use sid_dsp::goertzel_band_power;
/// let fs = 50.0;
/// let sig: Vec<f64> = (0..512)
///     .map(|i| (2.0 * std::f64::consts::PI * 0.5 * i as f64 / fs).sin())
///     .collect();
/// // 0.5 Hz tone: the 0.2–0.8 Hz ship band dwarfs the 2–10 Hz band.
/// let ship = goertzel_band_power(&sig, 0.2, 0.8, fs)?;
/// let high = goertzel_band_power(&sig, 2.0, 10.0, fs)?;
/// assert!(ship > 100.0 * high);
/// # Ok::<(), sid_dsp::DspError>(())
/// ```
pub fn goertzel_band_power(
    signal: &[f64],
    lo_hz: f64,
    hi_hz: f64,
    sample_rate: f64,
) -> DspResult<f64> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !(sample_rate > 0.0 && lo_hz >= 0.0 && lo_hz < hi_hz && hi_hz <= sample_rate / 2.0) {
        return Err(DspError::InvalidParameter {
            name: "lo_hz/hi_hz",
            reason: "need 0 <= lo < hi <= sample_rate/2",
        });
    }
    let n = signal.len();
    // Bin range matching `f >= lo && f < hi` on bin frequencies k·fs/N;
    // ceil lands on the first bin at or above lo, and an exact hit on hi
    // stays excluded because the comparison there is strict.
    let k_lo = (lo_hz * n as f64 / sample_rate).ceil() as usize;
    let k_hi = ((hi_hz * n as f64 / sample_rate).ceil() as usize).min(n / 2 + 1);
    if k_lo >= k_hi {
        return Ok(0.0);
    }
    let bins = k_hi - k_lo;
    let coeffs: Vec<f64> = (k_lo..k_hi)
        .map(|k| 2.0 * (std::f64::consts::TAU * k as f64 / n as f64).cos())
        .collect();
    let mut s1 = vec![0.0f64; bins];
    let mut s2 = vec![0.0f64; bins];
    for &x in signal {
        for i in 0..bins {
            let s0 = x + coeffs[i] * s1[i] - s2[i];
            s2[i] = s1[i];
            s1[i] = s0;
        }
    }
    Ok((0..bins)
        .map(|i| s1[i] * s1[i] + s2[i] * s2[i] - coeffs[i] * s1[i] * s2[i])
        .sum())
}

/// Biased autocorrelation `r[lag] = (1/N)·Σ x[i]·x[i+lag]` for lags
/// `0..=max_lag`.
///
/// # Errors
///
/// * [`DspError::EmptyInput`] for an empty signal.
/// * [`DspError::InvalidParameter`] if `max_lag >= signal.len()`.
pub fn autocorrelation(signal: &[f64], max_lag: usize) -> DspResult<Vec<f64>> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if max_lag >= signal.len() {
        return Err(DspError::InvalidParameter {
            name: "max_lag",
            reason: "must be shorter than the signal",
        });
    }
    let n = signal.len();
    Ok((0..=max_lag)
        .map(|lag| {
            signal[..n - lag]
                .iter()
                .zip(&signal[lag..])
                .map(|(a, b)| a * b)
                .sum::<f64>()
                / n as f64
        })
        .collect())
}

/// Estimates the dominant period (in samples) of `signal` from the first
/// non-trivial autocorrelation peak, searching lags in
/// `[min_lag, max_lag]`. Returns `None` when no interior peak exists
/// (e.g. white noise or a monotone trend).
///
/// # Errors
///
/// Propagates [`autocorrelation`]'s errors; additionally rejects
/// `min_lag == 0` or an empty search range.
pub fn dominant_period(
    signal: &[f64],
    min_lag: usize,
    max_lag: usize,
) -> DspResult<Option<usize>> {
    if min_lag == 0 || max_lag < min_lag {
        return Err(DspError::InvalidParameter {
            name: "min_lag",
            reason: "need 0 < min_lag <= max_lag",
        });
    }
    let r = autocorrelation(signal, max_lag)?;
    let mut best: Option<(usize, f64)> = None;
    for lag in min_lag..=max_lag {
        let v = r[lag];
        let left = r[lag - 1];
        let right = if lag < max_lag { r[lag + 1] } else { f64::MIN };
        if v > 0.0 && v >= left && v > right
            && best.map(|(_, b)| v > b).unwrap_or(true) {
                best = Some((lag, v));
            }
    }
    Ok(best.map(|(lag, _)| lag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| (TAU * freq * i as f64 / fs).sin()).collect()
    }

    #[test]
    fn goertzel_matches_expected_tone_power() {
        let fs = 50.0;
        let n = 500;
        // Bin-aligned tone: 5 Hz = bin 50 of 500 @ 50 Hz.
        let sig = tone(5.0, fs, n);
        let p = goertzel_power(&sig, 5.0, fs).unwrap();
        // Unit sine at an exact bin: |X|² = (N/2)².
        let expected = (n as f64 / 2.0).powi(2);
        assert!((p - expected).abs() / expected < 1e-6, "{p} vs {expected}");
    }

    #[test]
    fn goertzel_rejects_off_band() {
        let fs = 50.0;
        let sig = tone(5.0, fs, 500);
        assert!(goertzel_power(&sig, 0.0, fs).is_err());
        assert!(goertzel_power(&sig, 25.0, fs).is_err());
        assert!(goertzel_power(&[], 5.0, fs).is_err());
    }

    #[test]
    fn goertzel_agrees_with_fft() {
        let fs = 50.0;
        let n = 512;
        let sig: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                0.7 * (TAU * 3.0 * t).sin() + 0.2 * (TAU * 9.0 * t).cos()
            })
            .collect();
        let spec = crate::fft::fft_real(&sig).unwrap();
        for &f in &[3.0f64, 9.0, 15.0] {
            let k = (f * n as f64 / fs).round() as usize;
            let fft_power = spec[k].norm_sqr();
            let g = goertzel_power(&sig, f, fs).unwrap();
            assert!(
                (g - fft_power).abs() <= 1e-6 * fft_power.max(1.0),
                "f={f}: {g} vs {fft_power}"
            );
        }
    }

    #[test]
    fn band_power_agrees_with_fft_bin_sum() {
        let fs = 50.0;
        let n = 1024;
        let sig: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                0.8 * (TAU * 0.5 * t).sin()
                    + 0.3 * (TAU * 1.7 * t).cos()
                    + 0.1 * (TAU * 6.0 * t).sin()
            })
            .collect();
        let spec = crate::fft::fft_real(&sig).unwrap();
        for &(lo, hi) in &[(0.2f64, 0.8f64), (0.0, 2.0), (1.0, 25.0)] {
            let expected: f64 = spec
                .iter()
                .take(n / 2 + 1)
                .enumerate()
                .filter(|(k, _)| {
                    let f = *k as f64 * fs / n as f64;
                    f >= lo && f < hi
                })
                .map(|(_, c)| c.norm_sqr())
                .sum();
            let got = goertzel_band_power(&sig, lo, hi, fs).unwrap();
            assert!(
                (got - expected).abs() <= 1e-6 * expected.max(1.0),
                "band [{lo},{hi}): {got} vs {expected}"
            );
        }
    }

    #[test]
    fn band_power_empty_band_is_zero() {
        let sig = tone(5.0, 50.0, 100);
        // Band narrower than one bin spacing that straddles no bin.
        let p = goertzel_band_power(&sig, 0.1, 0.2, 50.0).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn band_power_validates() {
        let sig = tone(5.0, 50.0, 100);
        assert!(goertzel_band_power(&[], 0.2, 0.8, 50.0).is_err());
        assert!(goertzel_band_power(&sig, 0.8, 0.2, 50.0).is_err());
        assert!(goertzel_band_power(&sig, -0.1, 0.8, 50.0).is_err());
        assert!(goertzel_band_power(&sig, 0.2, 30.0, 50.0).is_err());
        assert!(goertzel_band_power(&sig, 0.2, 0.8, 0.0).is_err());
    }

    #[test]
    fn autocorrelation_zero_lag_is_power() {
        let sig = vec![1.0, -2.0, 3.0];
        let r = autocorrelation(&sig, 2).unwrap();
        assert!((r[0] - (1.0 + 4.0 + 9.0) / 3.0).abs() < 1e-12);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn autocorrelation_validates() {
        assert!(autocorrelation(&[], 0).is_err());
        assert!(autocorrelation(&[1.0, 2.0], 2).is_err());
    }

    #[test]
    fn dominant_period_finds_the_tone() {
        let fs = 50.0;
        let f0 = 2.0; // period = 25 samples
        let sig = tone(f0, fs, 1000);
        let lag = dominant_period(&sig, 5, 100).unwrap().expect("peak");
        assert_eq!(lag, 25);
    }

    #[test]
    fn dominant_period_of_noise_like_input_is_unstable_or_none() {
        // A strictly decreasing sequence has no interior positive ACF peak.
        let sig: Vec<f64> = (0..100).map(|i| 1.0 / (i + 1) as f64).collect();
        let got = dominant_period(&sig, 2, 40).unwrap();
        assert!(got.is_none(), "got {got:?}");
    }

    #[test]
    fn dominant_period_validates() {
        assert!(dominant_period(&[1.0; 10], 0, 5).is_err());
        assert!(dominant_period(&[1.0; 10], 6, 5).is_err());
    }
}
