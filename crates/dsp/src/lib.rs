//! # sid-dsp
//!
//! From-scratch digital signal processing substrate for the SID
//! reproduction (*SID: Ship Intrusion Detection with Wireless Sensor
//! Networks*, ICDCS 2011).
//!
//! The paper's detection pipeline needs: a short-time Fourier transform to
//! compare ocean vs. ship spectra (its Fig. 6), a Morlet continuous wavelet
//! transform to localise ship energy in time–frequency (Fig. 7), a < 1 Hz
//! low-pass filter in front of the node-level detector (Fig. 8), and
//! moving mean/standard-deviation statistics for the adaptive threshold
//! (eq. 4–5). The reproduction environment has no suitable DSP dependency
//! ("DSP ecosystem thin"), so everything here is implemented and tested
//! from first principles:
//!
//! * [`Complex`] — minimal complex arithmetic.
//! * [`Fft`] / [`fft_real`] — iterative radix-2 Cooley–Tukey FFT.
//! * [`Window`] — Hann/Hamming/Blackman tapers.
//! * [`Stft`] — framed power spectra (the paper's 2048-point, 40.96 s
//!   windows at 50 Hz).
//! * [`find_peaks`] / [`spectral_features`] — the single-peak vs.
//!   multi-peak discrimination features.
//! * [`Morlet`] — continuous wavelet transform and [`Scalogram`].
//! * [`LowPassFir`] / [`butterworth_lowpass`] — offline zero-phase and
//!   online causal low-pass filters.
//! * [`RunningStats`] / [`EwmaStats`] — Welford block statistics and the
//!   paper's β = 0.99 exponentially weighted threshold state.
//!
//! # Examples
//!
//! Distinguish a narrowband swell from a broadband ship-wave mixture by
//! peak count, as the paper does visually in Fig. 6:
//!
//! ```
//! use sid_dsp::{PeakConfig, Stft, StftConfig, Window, spectral_features};
//!
//! let cfg = StftConfig { frame_len: 512, hop: 512, window: Window::Hann, sample_rate: 50.0 };
//! let stft = Stft::new(cfg)?;
//! let fs = 50.0;
//! let swell: Vec<f64> = (0..512)
//!     .map(|i| (2.0 * std::f64::consts::PI * 0.4 * i as f64 / fs).sin())
//!     .collect();
//! let frame = &stft.analyze(&swell)?[0];
//! let features = spectral_features(&frame.power, frame.bin_hz, &PeakConfig::default());
//! assert_eq!(features.peak_count, 1);
//! # Ok::<(), sid_dsp::DspError>(())
//! ```

// `!(x > 0.0)`-style validation is used deliberately throughout: unlike
// `x <= 0.0`, the negated comparison also rejects NaN inputs.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod complex;
mod error;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod hilbert;
pub mod resample;
pub mod rfft;
pub mod spectrum;
pub mod stats;
pub mod stft;
pub mod wavelet;
pub mod window;

pub use complex::Complex;
pub use error::{DspError, DspResult};
pub use fft::{bin_frequency, fft_plan, fft_real, fft_real_into, Fft};
pub use goertzel::{autocorrelation, dominant_period, goertzel_band_power, goertzel_power};
pub use hilbert::{hilbert_envelope, hilbert_envelope_into};
pub use filter::{
    butterworth_lowpass, butterworth_lowpass_order4, Biquad, BiquadCascade, LowPassFir,
};
pub use resample::{decimate, detrend_mean, rectify, remove_bias, sample_at};
pub use rfft::{rfft_plan, RealFft};
pub use spectrum::{find_peaks, spectral_features, Peak, PeakConfig, SpectralFeatures};
pub use stats::{EwmaStats, RunningStats};
pub use stft::{SlidingStft, SpectralFrame, Stft, StftConfig};
pub use wavelet::{low_band_fraction, Morlet, MorletConfig, Scalogram};
pub use window::Window;
