//! Window functions for short-time spectral analysis.

use serde::{Deserialize, Serialize};

/// Taper applied to each analysis frame before the FFT.
///
/// The paper's STFT (Section III-C) uses plain segmented ("windowed") Fourier
/// transforms; we default to [`Window::Hann`] which suppresses the spectral
/// leakage that would otherwise blur the single-peak / multi-peak distinction
/// between ocean and ship spectra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Window {
    /// No taper (rectangular window).
    Rectangular,
    /// Hann (raised-cosine) window.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
}

impl Window {
    /// Evaluates the window at sample `i` of an `n`-sample frame.
    ///
    /// Uses the periodic convention (denominator `n`), which is the right
    /// choice for overlap-add STFT processing.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        assert!(i < n, "window index {i} out of range for length {n}");
        if n == 1 {
            return 1.0;
        }
        let x = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 * (1.0 - x.cos()),
            Window::Hamming => 0.54 - 0.46 * x.cos(),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// Materialises the window as a coefficient vector of length `n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sid_dsp::Window;
    /// let w = Window::Hann.coefficients(8);
    /// assert_eq!(w.len(), 8);
    /// assert!(w[0] < 1e-12); // Hann starts at zero
    /// ```
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coefficient(i, n)).collect()
    }

    /// Sum of squared coefficients, used to normalise power spectra so
    /// window choice does not change reported energy.
    pub fn power_gain(self, n: usize) -> f64 {
        (0..n).map(|i| self.coefficient(i, n).powi(2)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(16)
            .iter()
            .all(|&c| c == 1.0));
    }

    #[test]
    fn hann_is_symmetric_and_peaks_mid() {
        let n = 64;
        let w = Window::Hann.coefficients(n);
        for i in 1..n {
            assert!((w[i] - w[n - i]).abs() < 1e-12);
        }
        let max = w.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-2);
        assert!(w[0].abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints() {
        let w = Window::Hamming.coefficients(32);
        assert!((w[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_is_nonnegative() {
        assert!(Window::Blackman
            .coefficients(128)
            .iter()
            .all(|&c| c >= -1e-12));
    }

    #[test]
    fn length_one_window_is_unity() {
        for w in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
        ] {
            assert_eq!(w.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    fn power_gain_matches_sum_of_squares() {
        let n = 256;
        let direct: f64 = Window::Hann
            .coefficients(n)
            .iter()
            .map(|c| c * c)
            .sum();
        assert!((Window::Hann.power_gain(n) - direct).abs() < 1e-12);
        assert_eq!(Window::Rectangular.power_gain(n), n as f64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        Window::Hann.coefficient(8, 8);
    }
}
