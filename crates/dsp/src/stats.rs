//! Running statistics used by the adaptive threshold (paper eq. 4–5).
//!
//! Two pieces: [`RunningStats`] (Welford's numerically stable one-pass mean
//! and standard deviation over a block, the paper's `m_Δt`, `d_Δt`) and
//! [`EwmaStats`] (the exponentially weighted update `m'_T = β₁·m'_T +
//! m_Δt·(1−β₁)` that tracks slow sea-state changes).

use serde::{Deserialize, Serialize};

/// One-pass (Welford) mean and standard deviation accumulator.
///
/// # Examples
///
/// ```
/// use sid_dsp::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an accumulator from a slice in one pass.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        s.extend(values.iter().copied());
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`; 0 when fewer than 1 sample).
    ///
    /// The paper's eq. 4 uses the population convention
    /// (`d_Δt = √(1/u · Σ(aᵢ−m)²)`), so that is the default here.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (divides by `n−1`; 0 when fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Exponentially weighted moving mean and standard deviation — the paper's
/// environment-adaptive threshold state (eq. 5 with β₁ = β₂ = 0.99).
///
/// Block statistics `(m_Δt, d_Δt)` are folded in with
/// `m'_T ← β₁·m'_T + (1−β₁)·m_Δt` and likewise for the deviation.
///
/// # Examples
///
/// ```
/// use sid_dsp::EwmaStats;
///
/// let mut e = EwmaStats::new(0.99, 0.99);
/// e.seed(1.0, 0.2);
/// e.update(2.0, 0.4);
/// assert!((e.mean() - (0.99 * 1.0 + 0.01 * 2.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaStats {
    beta_mean: f64,
    beta_std: f64,
    mean: f64,
    std: f64,
    seeded: bool,
}

impl EwmaStats {
    /// Creates an un-seeded accumulator with the given smoothing factors.
    ///
    /// # Panics
    ///
    /// Panics unless both betas lie in `[0, 1)`... strictly `(0, 1]` is the
    /// paper's convention with β = 0.99; we accept `[0, 1]`.
    pub fn new(beta_mean: f64, beta_std: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&beta_mean) && (0.0..=1.0).contains(&beta_std),
            "betas must lie in [0, 1]"
        );
        EwmaStats {
            beta_mean,
            beta_std,
            mean: 0.0,
            std: 0.0,
            seeded: false,
        }
    }

    /// The paper's parameters: β₁ = β₂ = 0.99.
    pub fn paper_default() -> Self {
        EwmaStats::new(0.99, 0.99)
    }

    /// Sets the initial `(mean, std)` from the first calibration block
    /// (the paper's Initialization procedure).
    pub fn seed(&mut self, mean: f64, std: f64) {
        self.mean = mean;
        self.std = std;
        self.seeded = true;
    }

    /// Whether [`EwmaStats::seed`] or an update has run.
    pub fn is_seeded(&self) -> bool {
        self.seeded
    }

    /// Folds in a new block's statistics (eq. 5). The first update on an
    /// un-seeded accumulator seeds it instead.
    pub fn update(&mut self, block_mean: f64, block_std: f64) {
        if !self.seeded {
            self.seed(block_mean, block_std);
            return;
        }
        self.mean = self.beta_mean * self.mean + (1.0 - self.beta_mean) * block_mean;
        self.std = self.beta_std * self.std + (1.0 - self.beta_std) * block_std;
    }

    /// Current smoothed mean `m'_T`.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current smoothed standard deviation `d'_T`.
    pub fn std(&self) -> f64 {
        self.std
    }
}

impl Default for EwmaStats {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn single_value() {
        let s = RunningStats::from_slice(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37 % 101) as f64) * 0.13 - 5.0).collect();
        let s = RunningStats::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.population_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 * 0.7).collect();
        let b: Vec<f64> = (0..57).map(|i| 50.0 - i as f64).collect();
        let mut sa = RunningStats::from_slice(&a);
        let sb = RunningStats::from_slice(&b);
        sa.merge(&sb);
        let mut all = a.clone();
        all.extend(&b);
        let sall = RunningStats::from_slice(&all);
        assert_eq!(sa.count(), sall.count());
        assert!((sa.mean() - sall.mean()).abs() < 1e-10);
        assert!((sa.population_variance() - sall.population_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::from_slice(&[1.0, 2.0]);
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn from_iterator_collects() {
        let s: RunningStats = (1..=5).map(|i| i as f64).collect();
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn ewma_first_update_seeds() {
        let mut e = EwmaStats::paper_default();
        assert!(!e.is_seeded());
        e.update(4.0, 1.5);
        assert!(e.is_seeded());
        assert_eq!(e.mean(), 4.0);
        assert_eq!(e.std(), 1.5);
    }

    #[test]
    fn ewma_follows_equation_five() {
        let mut e = EwmaStats::new(0.9, 0.8);
        e.seed(10.0, 2.0);
        e.update(20.0, 4.0);
        assert!((e.mean() - (0.9 * 10.0 + 0.1 * 20.0)).abs() < 1e-12);
        assert!((e.std() - (0.8 * 2.0 + 0.2 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges_to_stationary_input() {
        let mut e = EwmaStats::new(0.99, 0.99);
        e.seed(0.0, 0.0);
        for _ in 0..2000 {
            e.update(7.0, 1.0);
        }
        assert!((e.mean() - 7.0).abs() < 0.01);
        assert!((e.std() - 1.0).abs() < 0.01);
    }

    #[test]
    fn ewma_adapts_slowly_with_high_beta() {
        // One outlier block barely moves the β=0.99 state — this is what
        // makes the threshold robust to a single ship-wave burst.
        let mut e = EwmaStats::paper_default();
        e.seed(1.0, 0.1);
        e.update(100.0, 50.0);
        assert!(e.mean() < 2.1);
        assert!(e.std() < 0.7);
    }

    #[test]
    #[should_panic(expected = "betas must lie in [0, 1]")]
    fn ewma_rejects_bad_beta() {
        EwmaStats::new(1.5, 0.5);
    }
}
