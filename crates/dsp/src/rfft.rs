//! Real-input FFT: the N-point spectrum of a real signal from one
//! N/2-point complex transform.
//!
//! Every hot spectral path in the reproduction transforms *real*
//! accelerometer samples, yet [`fft_real`](crate::fft_real) pays for a
//! full complex transform (the imaginary lanes carry zeros through every
//! butterfly). [`RealFft`] uses the classic even/odd packing instead:
//! the 2N real samples are interleaved into N complex values
//! `z[j] = x[2j] + i·x[2j+1]`, one N-point FFT is run, and a single
//! split/unpack pass recovers the one-sided spectrum `X[0..=N]` from the
//! Hermitian structure — half the butterfly work and half the working
//! set of the padded-complex route.
//!
//! The unpack identities (`H = N/2`, `W = e^{-2πi/N}`):
//!
//! ```text
//! E[k] = (Z[k] + conj(Z[H−k])) / 2          (spectrum of the even samples)
//! O[k] = −i/2 · (Z[k] − conj(Z[H−k]))      (spectrum of the odd samples)
//! X[k]     = E[k] + Wᵏ·O[k]
//! X[H−k]   = conj(E[k] − Wᵏ·O[k])
//! ```
//!
//! **Exactness.** The recovered spectrum is *not* bit-identical to the
//! padded-complex route: packing two reals into one complex lane changes
//! the floating-point summation order inside the butterflies, and the
//! unpack pass introduces its own roundings. The disagreement is bounded
//! by ordinary FFT round-off (observed ≲ 1e-14 relative for 2048-point
//! frames; asserted at 1e-12 by the property tests and the `dsp_bench`
//! smoke). Paths that must reproduce the pre-rfft numbers bit-for-bit
//! use the retained legacy route
//! ([`Stft::analyze_frame_legacy_into`](crate::Stft::analyze_frame_legacy_into));
//! the DST front-end oracle pins the old-vs-new contract (see
//! DESIGN.md §14).

use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::{Arc, Mutex, OnceLock};

use crate::complex::Complex;
use crate::error::{DspError, DspResult};
use crate::fft::{fft_plan, Fft};

/// A planned real-input FFT of a fixed power-of-two size.
///
/// Planning builds (or fetches from the process-wide cache) the inner
/// half-size complex FFT plan and precomputes the split twiddles, so
/// repeated transforms of the same size — the STFT hot loop — do no
/// trigonometry.
///
/// # Examples
///
/// ```
/// use sid_dsp::RealFft;
///
/// let rfft = RealFft::new(8)?;
/// let mut spectrum = Vec::new();
/// rfft.forward_into(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], &mut spectrum)?;
/// assert_eq!(spectrum.len(), 5); // one-sided: N/2 + 1 bins
/// // Impulse: flat unit spectrum.
/// for bin in &spectrum {
///     assert!((bin.norm() - 1.0).abs() < 1e-12);
/// }
/// # Ok::<(), sid_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RealFft {
    n: usize,
    /// Inner complex plan of size `n / 2` (unused sentinel for `n == 1`).
    half: Arc<Fft>,
    /// Split twiddles `e^{-2πi·k/N}` for `k ≤ N/4` (the unpack pass
    /// walks conjugate-mirror bin pairs, so only the first quarter turn
    /// is ever indexed).
    twiddles: Vec<Complex>,
}

impl RealFft {
    /// Plans a real-input FFT of size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::NotPowerOfTwo`] unless `n` is a power of two
    /// and at least 1.
    pub fn new(n: usize) -> DspResult<Self> {
        if n == 0 || !n.is_power_of_two() {
            return Err(DspError::NotPowerOfTwo { len: n });
        }
        let half = fft_plan((n / 2).max(1))?;
        let twiddles = (0..=n / 4)
            .map(|k| Complex::cis(-2.0 * PI * k as f64 / n as f64))
            .collect();
        Ok(RealFft { n, half, twiddles })
    }

    /// The transform size (number of real input samples).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the planned size is zero (never true for a
    /// successfully constructed plan).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of one-sided spectrum bins produced: `n/2 + 1`.
    #[inline]
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward-transforms `signal`, writing the one-sided spectrum
    /// `X[0..=n/2]` into `spectrum` (cleared and resized; the caller owns
    /// the buffer so a frame loop performs no per-frame allocation).
    ///
    /// Bins `k` in `1..n/2` represent both `±k·fs/n`; the implied
    /// negative-frequency half is `conj(X[k])` (real input ⇒ Hermitian
    /// spectrum).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `signal.len()` differs
    /// from the planned size.
    pub fn forward_into(&self, signal: &[f64], spectrum: &mut Vec<Complex>) -> DspResult<()> {
        if signal.len() != self.n {
            return Err(DspError::LengthMismatch {
                expected: self.n,
                actual: signal.len(),
            });
        }
        spectrum.clear();
        if self.n == 1 {
            spectrum.push(Complex::from_real(signal[0]));
            return Ok(());
        }
        let h = self.n / 2;
        // Pack: z[j] = x[2j] + i·x[2j+1], transformed in place inside the
        // output buffer — the unpack below then expands to H+1 bins using
        // the extra slot for Nyquist, so no scratch beyond `spectrum`.
        spectrum.reserve(h + 1);
        spectrum.extend(
            signal
                .chunks_exact(2)
                .map(|pair| Complex::new(pair[0], pair[1])),
        );
        self.forward_packed(spectrum)
    }

    /// Transforms a buffer the caller has already even/odd packed:
    /// `packed[j] = x[2j] + i·x[2j+1]` for `j < n/2`. On return `packed`
    /// holds the one-sided spectrum (`n/2 + 1` bins).
    ///
    /// This is the zero-copy entry point for producers that can fuse the
    /// packing with another elementwise pass (the STFT fuses windowing
    /// into it), skipping the intermediate real buffer entirely.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] if `packed.len()` differs
    /// from `n/2`, and [`DspError::InvalidParameter`] for a size-1 plan
    /// (nothing to pack; use [`Self::forward_into`]).
    pub fn forward_packed(&self, packed: &mut Vec<Complex>) -> DspResult<()> {
        if self.n == 1 {
            return Err(DspError::InvalidParameter {
                name: "packed",
                reason: "size-1 plans have no packed form",
            });
        }
        let h = self.n / 2;
        if packed.len() != h {
            return Err(DspError::LengthMismatch {
                expected: h,
                actual: packed.len(),
            });
        }
        self.half.forward(&mut packed[..h])?;
        // DC and Nyquist fall out of Z[0] alone: X[0] = ΣRe + ΣIm,
        // X[H] = ΣRe − ΣIm (both exactly real).
        let z0 = packed[0];
        packed[0] = Complex::from_real(z0.re + z0.im);
        packed.push(Complex::from_real(z0.re - z0.im));
        // Interior bins in conjugate-mirror pairs (k, H−k). When
        // k == H−k (the quarter bin) the two writes coincide and the
        // formulas agree, so a single write suffices.
        for k in 1..=h / 2 {
            let zk = packed[k];
            let zmk = packed[h - k].conj();
            let e = (zk + zmk).scale(0.5);
            let d = (zk - zmk).scale(0.5);
            // O[k] = −i·d
            let o = Complex::new(d.im, -d.re);
            let wo = self.twiddles[k] * o;
            packed[k] = e + wo;
            if k != h - k {
                packed[h - k] = (e - wo).conj();
            }
        }
        Ok(())
    }

    /// [`Self::forward_into`] returning a fresh spectrum vector.
    ///
    /// # Errors
    ///
    /// Same as [`Self::forward_into`].
    pub fn forward(&self, signal: &[f64]) -> DspResult<Vec<Complex>> {
        let mut spectrum = Vec::with_capacity(self.spectrum_len());
        self.forward_into(signal, &mut spectrum)?;
        Ok(spectrum)
    }
}

/// Returns the process-wide cached real-FFT plan for size `n`, planning
/// it on first use — the real-input counterpart of
/// [`fft_plan`], sharing its inner half-size complex
/// plan through the same cache.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] for invalid sizes (those are
/// never cached).
///
/// # Examples
///
/// ```
/// use sid_dsp::rfft_plan;
/// let a = rfft_plan(2048)?;
/// let b = rfft_plan(2048)?;
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// # Ok::<(), sid_dsp::DspError>(())
/// ```
pub fn rfft_plan(n: usize) -> DspResult<Arc<RealFft>> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<RealFft>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(plan) = map.get(&n) {
        return Ok(Arc::clone(plan));
    }
    let plan = Arc::new(RealFft::new(n)?);
    map.insert(n, Arc::clone(&plan));
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft_real;

    fn max_rel_err(got: &[Complex], want: &[Complex]) -> f64 {
        let scale = want
            .iter()
            .map(|z| z.norm())
            .fold(1.0_f64, f64::max);
        got.iter()
            .zip(want)
            .map(|(a, b)| (*a - *b).norm() / scale)
            .fold(0.0_f64, f64::max)
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(RealFft::new(12).is_err());
        assert!(RealFft::new(0).is_err());
        assert!(rfft_plan(3).is_err());
    }

    #[test]
    fn rejects_wrong_signal_length() {
        let rfft = RealFft::new(8).unwrap();
        let mut out = Vec::new();
        assert!(matches!(
            rfft.forward_into(&[0.0; 4], &mut out),
            Err(DspError::LengthMismatch { expected: 8, actual: 4 })
        ));
    }

    #[test]
    fn size_one_and_two_are_exact() {
        assert_eq!(
            RealFft::new(1).unwrap().forward(&[3.5]).unwrap(),
            vec![Complex::from_real(3.5)]
        );
        // N = 2: X[0] = x0 + x1, X[1] = x0 − x1 — exact sums.
        assert_eq!(
            RealFft::new(2).unwrap().forward(&[2.0, 5.0]).unwrap(),
            vec![Complex::from_real(7.0), Complex::from_real(-3.0)]
        );
    }

    #[test]
    fn matches_complex_fft_for_every_size() {
        for &n in &[2usize, 4, 8, 16, 64, 256, 2048] {
            let x: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.37).sin() + 0.25 * (i as f64 * 0.11).cos())
                .collect();
            let full = fft_real(&x).unwrap();
            let got = RealFft::new(n).unwrap().forward(&x).unwrap();
            assert_eq!(got.len(), n / 2 + 1);
            let err = max_rel_err(&got, &full[..n / 2 + 1]);
            assert!(err < 1e-13, "n={n}: max relative error {err}");
        }
    }

    #[test]
    fn dc_and_nyquist_are_exactly_real() {
        let x: Vec<f64> = (0..64).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let spec = RealFft::new(64).unwrap().forward(&x).unwrap();
        assert_eq!(spec[0].im, 0.0);
        assert_eq!(spec[32].im, 0.0);
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 128;
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let spec = RealFft::new(n).unwrap().forward(&x).unwrap();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        // One-sided fold: interior bins carry their mirror's energy too.
        let freq_energy: f64 = spec
            .iter()
            .enumerate()
            .map(|(k, z)| {
                let p = z.norm_sqr();
                if k == 0 || k == n / 2 {
                    p
                } else {
                    2.0 * p
                }
            })
            .sum::<f64>()
            / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn pure_tone_concentrates_in_its_bin() {
        let n = 256;
        let k0 = 9;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = RealFft::new(n).unwrap().forward(&x).unwrap();
        assert!((spec[k0].norm() - n as f64 / 2.0).abs() < 1e-9);
        for (k, bin) in spec.iter().enumerate() {
            if k != k0 {
                assert!(bin.norm() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn buffer_is_reused_without_reallocation() {
        let rfft = RealFft::new(64).unwrap();
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut spectrum = Vec::new();
        rfft.forward_into(&x, &mut spectrum).unwrap();
        let cap = spectrum.capacity();
        let first = spectrum.clone();
        rfft.forward_into(&x, &mut spectrum).unwrap();
        assert_eq!(spectrum.capacity(), cap, "scratch reallocated");
        assert_eq!(spectrum, first, "repeat transform diverged");
    }

    #[test]
    fn plan_cache_shares_one_plan_per_size() {
        let a = rfft_plan(128).unwrap();
        let b = rfft_plan(128).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 128);
        assert_eq!(a.spectrum_len(), 65);
    }
}
