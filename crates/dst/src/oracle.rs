//! Journal-driven invariant oracles.
//!
//! Each oracle replays the run's `sid-obs` event journal (plus the
//! pipeline trace and stage counts) and checks one invariant the SID
//! pipeline must uphold on *every* scenario — clean or chaotic. The
//! full battery runs in [`check_all`]; a passing run returns no
//! [`Violation`]s.
//!
//! The oracles (names are stable identifiers, used by the shrinker and
//! persisted in `results/DST_failures.json`):
//!
//! | oracle | invariant |
//! |---|---|
//! | `sink_no_double_accept` | the sink never accepts the same (head, time) alarm twice |
//! | `no_report_from_down_node` | a dead or outaged node emits no reports; battery death is final |
//! | `cluster_products_in_range` | `CNt`, `CNe`, `C` ∈ [0, 1] and `C = CNt × CNe` exactly (eq. 10–13) |
//! | `confirmed_implies_quorum` | confirmations meet the paper's nominal quorum (≥4 rows, ≥4 reports, C > 0.4) |
//! | `speed_estimates_physical` | sink speed estimates are finite and inside the physical bounds |
//! | `counts_match_journal` | `StageCounts` re-derived from the journal equals the live aggregation |
//! | `counts_match_trace` | journal counts agree with the pipeline's own `SystemTrace` |
//! | `gauges_non_negative` | wall gauges/timers are finite and non-negative |
//! | `time_monotone_and_bounded` | event times are non-decreasing and inside `[0, duration]` |
//! | `incident_ids_well_formed` | incident ids are allocated contiguously; duplicates reference known incidents |
//! | `outage_lifecycle` | `NodeUp` only follows an unrecovered outage; no event resurrects a dead node |
//! | `thread_journal_equivalence` | the journal is byte-identical at 1/2/4/8 worker threads |
//! | `stream_journal_equivalence` | the `sid-stream` driver reproduces the offline journal byte-for-byte at 1/2/4/8 threads and varied chunk sizes |
//! | `alert_suppression_correct` | an independent alert-edge replay reproduces every emit/suppress/coalesce/reload decision; no suppressed alert is lost without a matching summary record; token-bucket accounting is exact |
//! | `frontend_equivalence` | the default rfft/Goertzel/Parseval fast spectral front-end and the legacy full-complex path agree on a seed-derived stream: alarms bit-identical, window verdicts equal, wavelet observable within 0.05 |
//! | `scheduler_equivalence` | the event-driven scheduler (`run_events`) reproduces the fixed-tick sweep's journal, stage counts, trace and final clock byte-for-byte |
//! | `shard_equivalence` | partitioning the deployment into K ∈ {2, 4} spatial shards reproduces the unsharded journal byte-for-byte at 1/2/4/8 worker threads, including across a mid-episode `sid-serve` checkpoint/migrate/resume that changes both the pool width and the shard count |

use sid_alert::{AlertEdge, AlertInput};
use sid_obs::{Event, StageCounts};
use sid_ocean::MPS_PER_KNOT;

use crate::scenario::{execute_with_threads, RunReport, Sabotage};

/// One failed invariant: which oracle fired and a human-readable detail
/// naming the offending event(s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable oracle identifier (see the module table).
    pub oracle: &'static str,
    /// What exactly went wrong.
    pub detail: String,
}

fn fail(out: &mut Vec<Violation>, oracle: &'static str, detail: String) {
    out.push(Violation { oracle, detail });
}

/// Runs every oracle over one execution's journal, trace and counts.
/// `check_threads` scenarios additionally re-run the simulation at
/// 2/4/8 worker threads (three extra simulations) to pin the journal
/// determinism contract.
pub fn check_all(report: &RunReport) -> Vec<Violation> {
    let mut v = Vec::new();
    sink_no_double_accept(report, &mut v);
    no_report_from_down_node(report, &mut v);
    cluster_products_in_range(report, &mut v);
    confirmed_implies_quorum(report, &mut v);
    speed_estimates_physical(report, &mut v);
    counts_match_journal(report, &mut v);
    counts_match_trace(report, &mut v);
    gauges_non_negative(report, &mut v);
    time_monotone_and_bounded(report, &mut v);
    incident_ids_well_formed(report, &mut v);
    outage_lifecycle(report, &mut v);
    alert_suppression_correct(report, &mut v);
    if report.scenario.check_threads {
        thread_journal_equivalence(report, &mut v);
    }
    if report.scenario.check_stream {
        stream_journal_equivalence(report, &mut v);
    }
    if report.scenario.check_frontend {
        frontend_equivalence(report, &mut v);
    }
    if report.scenario.check_sched {
        scheduler_equivalence(report, &mut v);
    }
    if report.scenario.check_shard {
        shard_equivalence(report, &mut v);
    }
    v
}

/// The sink must file every accepted alarm exactly once: two
/// `SinkAccepted` events with the same (head, time) mean the duplicate
/// filter failed.
fn sink_no_double_accept(report: &RunReport, out: &mut Vec<Violation>) {
    let mut seen: Vec<(u32, u64)> = Vec::new();
    for event in &report.events {
        if let Event::SinkAccepted { time, head, .. } = event {
            let key = (*head, time.to_bits());
            if seen.contains(&key) {
                fail(
                    out,
                    "sink_no_double_accept",
                    format!("sink accepted head {head} twice at t={time:.3}"),
                );
            }
            seen.push(key);
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum NodeState {
    Up,
    Outage,
    Dead,
}

fn replay_node_state(events: &[Event], mut visit: impl FnMut(&Event, &[NodeState])) -> bool {
    let max_node = events.iter().filter_map(Event::node).max().unwrap_or(0);
    let mut state = vec![NodeState::Up; max_node as usize + 1];
    let mut well_formed = true;
    for event in events {
        visit(event, &state);
        match event {
            Event::NodeDown { node, reason, .. } => {
                let s = &mut state[*node as usize];
                match reason.as_str() {
                    // An outage can strike a node that is already out;
                    // a battery death can strike mid-outage. Both keep
                    // the node down.
                    "outage" if *s != NodeState::Dead => *s = NodeState::Outage,
                    "battery" if *s != NodeState::Dead => *s = NodeState::Dead,
                    _ => well_formed = false,
                }
            }
            Event::NodeUp { node, .. } => {
                let s = &mut state[*node as usize];
                if *s == NodeState::Outage {
                    *s = NodeState::Up;
                } else {
                    well_formed = false;
                }
            }
            _ => {}
        }
    }
    well_formed
}

/// A node that is powered off (battery death) or in a transient outage
/// cannot sample, so it must not emit reports or classifier verdicts.
fn no_report_from_down_node(report: &RunReport, out: &mut Vec<Violation>) {
    let mut bad: Vec<String> = Vec::new();
    replay_node_state(&report.events, |event, state| match event {
        Event::ReportEmitted { time, node, .. } | Event::ClassifierVerdict { time, node, .. }
            if state[*node as usize] != NodeState::Up =>
        {
            bad.push(format!(
                "{} from down node {node} at t={time:.3}",
                event.kind()
            ));
        }
        _ => {}
    });
    for detail in bad {
        fail(out, "no_report_from_down_node", detail);
    }
}

/// Eq. 10–13: the cluster products are probabilities-like factors in
/// `[0, 1]`, and the combined coefficient is exactly their product.
fn cluster_products_in_range(report: &RunReport, out: &mut Vec<Violation>) {
    for event in &report.events {
        if let Event::ClusterEvaluated {
            time,
            head,
            correlation,
            cnt,
            cne,
            ..
        } = event
        {
            for (name, value) in [("C", *correlation), ("CNt", *cnt), ("CNe", *cne)] {
                if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                    fail(
                        out,
                        "cluster_products_in_range",
                        format!("{name}={value} outside [0,1] at head {head}, t={time:.3}"),
                    );
                }
            }
            // Same f64 multiply the pipeline performs: bit-exact.
            if *correlation != cnt * cne {
                fail(
                    out,
                    "cluster_products_in_range",
                    format!(
                        "C={correlation} != CNt*CNe={} at head {head}, t={time:.3}",
                        cnt * cne
                    ),
                );
            }
        }
    }
}

/// Every confirmed cluster evaluation (and every sink accept) must meet
/// the paper's *nominal* decision thresholds — eq. 13's `C > 0.4` over
/// at least `min_rows` rows with a full report quorum. A build whose
/// quorum constants were tampered with trips this oracle.
fn confirmed_implies_quorum(report: &RunReport, out: &mut Vec<Violation>) {
    let nominal = report.scenario.config(Sabotage::None).cluster;
    for event in &report.events {
        match event {
            Event::ClusterEvaluated {
                time,
                head,
                reports,
                rows,
                correlation,
                quorum_met,
                confirmed: true,
                ..
            } => {
                if *rows < nominal.correlation.min_rows as u64 {
                    fail(
                        out,
                        "confirmed_implies_quorum",
                        format!(
                            "confirmation with {rows} rows (< {}) at head {head}, t={time:.3}",
                            nominal.correlation.min_rows
                        ),
                    );
                }
                if *correlation <= nominal.correlation.c_threshold {
                    fail(
                        out,
                        "confirmed_implies_quorum",
                        format!(
                            "confirmation with C={correlation} <= {} at head {head}, t={time:.3}",
                            nominal.correlation.c_threshold
                        ),
                    );
                }
                if *reports < nominal.min_reports as u64 || !quorum_met {
                    fail(
                        out,
                        "confirmed_implies_quorum",
                        format!(
                            "confirmation with {reports} reports (quorum {}, met={quorum_met}) \
                             at head {head}, t={time:.3}",
                            nominal.min_reports
                        ),
                    );
                }
            }
            Event::SinkAccepted {
                time,
                head,
                correlation,
                ..
            } if !correlation.is_finite()
                || *correlation <= nominal.correlation.c_threshold
                || *correlation > 1.0 =>
            {
                fail(
                    out,
                    "confirmed_implies_quorum",
                    format!(
                        "sink accepted C={correlation} outside ({}, 1] from head {head}, \
                         t={time:.3}",
                        nominal.correlation.c_threshold
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Confirmed detections carry speed/track estimates only when the wake
/// geometry allowed one; when present they must be finite and inside
/// the estimator's physical bounds (0.5–30 m/s, α ∈ [0°, 180°]).
fn speed_estimates_physical(report: &RunReport, out: &mut Vec<Violation>) {
    for det in &report.trace.sink_detections {
        if let Some(knots) = det.speed_knots {
            let mps = knots * MPS_PER_KNOT;
            if !knots.is_finite() || !(0.45..=30.5).contains(&mps) {
                fail(
                    out,
                    "speed_estimates_physical",
                    format!(
                        "speed {knots} kn ({mps:.2} m/s) outside [0.5, 30] m/s from head {}",
                        det.head.value()
                    ),
                );
            }
        }
        if let Some(alpha) = det.track_angle_deg {
            if !alpha.is_finite() || !(0.0..=180.0).contains(&alpha) {
                fail(
                    out,
                    "speed_estimates_physical",
                    format!(
                        "track angle {alpha}° outside [0°, 180°] from head {}",
                        det.head.value()
                    ),
                );
            }
        }
    }
}

/// `StageCounts` is defined as a pure fold over the journal; the live
/// aggregation the recorder kept must equal the re-derived fold.
fn counts_match_journal(report: &RunReport, out: &mut Vec<Violation>) {
    let rederived = StageCounts::from_events(&report.events);
    if rederived != report.counts {
        fail(
            out,
            "counts_match_journal",
            format!(
                "live counts {:?} != journal-derived {:?}",
                report.counts, rederived
            ),
        );
    }
}

/// The journal and the pipeline's `SystemTrace` are two independent
/// recordings of the same run; their shared counters must agree.
fn counts_match_trace(report: &RunReport, out: &mut Vec<Violation>) {
    let c = &report.counts;
    let t = &report.trace;
    let confirmed = t.cluster_outcomes.iter().filter(|o| o.confirmed).count();
    let checks: [(&str, u64, u64); 8] = [
        ("node reports", c.node_reports_emitted, t.node_reports.len() as u64),
        ("clusters formed", c.clusters_formed, t.clusters_formed as u64),
        (
            "clusters evaluated",
            c.clusters_evaluated,
            t.cluster_outcomes.len() as u64,
        ),
        ("clusters confirmed", c.clusters_confirmed, confirmed as u64),
        ("head failovers", c.head_failovers, t.head_failovers as u64),
        (
            "degraded evaluations",
            c.degraded_evaluations,
            t.degraded_evaluations as u64,
        ),
        ("faults applied", c.faults_injected, t.faults_applied as u64),
        (
            "sink deliveries",
            c.sink_accepted + c.sink_duplicates_dropped,
            t.sink_detections.len() as u64,
        ),
    ];
    for (what, journal, trace) in checks {
        if journal != trace {
            fail(
                out,
                "counts_match_trace",
                format!("{what}: journal counted {journal}, trace recorded {trace}"),
            );
        }
    }
}

/// Wall-clock instrumentation can never go negative or non-finite, no
/// matter how the scheduler interleaved the run.
fn gauges_non_negative(report: &RunReport, out: &mut Vec<Violation>) {
    for stage in &report.wall.stages {
        if !stage.secs.is_finite() || stage.secs < 0.0 {
            fail(
                out,
                "gauges_non_negative",
                format!("stage {} recorded {} seconds", stage.stage, stage.secs),
            );
        }
    }
    for gauge in &report.wall.gauges {
        if !gauge.max.is_finite() || gauge.max < 0.0 {
            fail(
                out,
                "gauges_non_negative",
                format!("gauge {} peaked at {}", gauge.gauge, gauge.max),
            );
        }
    }
}

/// Simulated time only moves forward, and no event can be stamped
/// outside the run's `[0, duration]` window.
fn time_monotone_and_bounded(report: &RunReport, out: &mut Vec<Violation>) {
    let mut prev = 0.0_f64;
    let limit = report.scenario.duration + 0.5;
    for event in &report.events {
        let Some(time) = event.time() else { continue };
        if !time.is_finite() || time < prev || time > limit {
            fail(
                out,
                "time_monotone_and_bounded",
                format!(
                    "{} at t={time} after t={prev} (run duration {})",
                    event.kind(),
                    report.scenario.duration
                ),
            );
        }
        prev = prev.max(time);
    }
}

/// Incident ids are allocated contiguously from 0 as detections arrive;
/// a duplicate drop must reference an incident that already exists.
fn incident_ids_well_formed(report: &RunReport, out: &mut Vec<Violation>) {
    let mut next_fresh = 0u32;
    for event in &report.events {
        match event {
            Event::SinkAccepted { time, incident, .. } => {
                if *incident > next_fresh {
                    fail(
                        out,
                        "incident_ids_well_formed",
                        format!(
                            "incident {incident} accepted at t={time:.3} before \
                             {next_fresh} existed"
                        ),
                    );
                } else if *incident == next_fresh {
                    next_fresh += 1;
                }
            }
            Event::SinkDuplicateDropped { time, incident, .. } if *incident >= next_fresh => {
                fail(
                    out,
                    "incident_ids_well_formed",
                    format!("duplicate filed under unknown incident {incident} at t={time:.3}"),
                );
            }
            _ => {}
        }
    }
}

/// `NodeUp` may only follow an unrecovered outage, outage/battery downs
/// may not strike a dead node, and reason strings are from the known
/// set. (Report emission from down nodes is `no_report_from_down_node`.)
fn outage_lifecycle(report: &RunReport, out: &mut Vec<Violation>) {
    if !replay_node_state(&report.events, |_, _| {}) {
        fail(
            out,
            "outage_lifecycle",
            "node up/down events do not form a valid lifecycle \
             (NodeUp without an outage, an event on a dead node, or an \
             unknown down-reason)"
                .to_string(),
        );
    }
}

/// Whether an alert/reload journal event participates in the
/// alert-suppression replay comparison. `Warning` events are *not*
/// compared: the pipeline journals one alongside every reload
/// rejection, but warnings are a shared channel other stages write to.
fn is_alert_event(event: &Event) -> bool {
    matches!(
        event,
        Event::AlertEmitted { .. }
            | Event::AlertSuppressed { .. }
            | Event::AlertCoalesced { .. }
            | Event::ConfigReloaded { .. }
            | Event::ConfigReloadRejected { .. }
    )
}

/// Replays the run's alerting edge independently: a fresh `AlertEdge`
/// built from the scenario's alert config is driven over the journal's
/// `SinkAccepted` stream on the pipeline's own tick grid (`now += dt`
/// accumulation, retunes applied at tick tops, summaries flushed at
/// tick ends) and must reproduce the journal's alert/reload events
/// one-for-one. On top of the 1:1 comparison, the suppression ledger
/// must balance: every `AlertSuppressed` is either covered by a later
/// `AlertCoalesced` summary or still pending inside the edge at run
/// end — an alert can be rate-limited, never silently lost.
fn alert_suppression_correct(report: &RunReport, out: &mut Vec<Violation>) {
    let scenario = &report.scenario;
    let config = scenario.config(report.sabotage);
    let mut edge = AlertEdge::new(config.alert);
    let mut detector = config.detector;
    let mut cluster = config.cluster;
    let mut tracker = sid_core::TrackerConfig::default();
    let mut retunes = scenario.retunes();

    // The non-duplicate accepts the pipeline fed its edge, keyed by the
    // bit pattern of their tick time (the replay clock reproduces the
    // pipeline's `now += dt` accumulation bit-for-bit).
    let mut accepts = std::collections::VecDeque::new();
    for event in &report.events {
        if let Event::SinkAccepted {
            time,
            head,
            incident,
            correlation,
        } = event
        {
            accepts.push_back((time.to_bits(), *incident, *head, *correlation));
        }
    }

    let mut expected: Vec<Event> = Vec::new();
    // Retunes cannot touch `sample_rate`, so the tick grid is fixed by
    // the initial config — same computation as `Pipeline::run`.
    let dt = 1.0 / detector.sample_rate;
    let steps = sid_core::pipeline::ticks_in(scenario.duration, dt);
    let mut now = 0.0_f64;
    for _ in 0..steps {
        now += dt;
        while retunes.first().is_some_and(|&(t, _)| t <= now) {
            let (_, retune) = retunes.remove(0);
            match retune.validated(&detector, &cluster, &tracker) {
                Ok((d, c, t)) => {
                    detector = d;
                    cluster = c;
                    tracker = t;
                    expected.push(Event::ConfigReloaded {
                        time: now,
                        changes: retune.describe(),
                    });
                }
                Err(err) => expected.push(Event::ConfigReloadRejected {
                    time: now,
                    reason: err.to_string(),
                }),
            }
        }
        while accepts
            .front()
            .is_some_and(|&(bits, ..)| bits == now.to_bits())
        {
            let (_, incident, head, correlation) = accepts.pop_front().expect("front exists");
            expected.extend(edge.ingest(AlertInput {
                time: now,
                incident,
                head,
                correlation,
            }));
        }
        expected.extend(edge.flush_due(now));
    }
    if let Some(&(bits, incident, head, _)) = accepts.front() {
        fail(
            out,
            "alert_suppression_correct",
            format!(
                "sink accept (incident {incident}, head {head}) at t={} is not aligned \
                 to the tick grid",
                f64::from_bits(bits)
            ),
        );
        return;
    }

    // 1:1 comparison against the journal's alert/reload events.
    let journaled: Vec<&Event> = report.events.iter().filter(|e| is_alert_event(e)).collect();
    if let Some((idx, (journal, replay))) = journaled
        .iter()
        .map(Some)
        .chain(std::iter::repeat(None))
        .zip(expected.iter().map(Some).chain(std::iter::repeat(None)))
        .take(journaled.len().max(expected.len()))
        .enumerate()
        .find_map(|(idx, pair)| match pair {
            (Some(j), Some(r)) if **j == *r => None,
            (j, r) => Some((idx, (j.map(|e| format!("{e:?}")), r.map(|e| format!("{e:?}"))))),
        })
    {
        fail(
            out,
            "alert_suppression_correct",
            format!(
                "alert event {idx} diverged: journal {} vs replay {}",
                journal.as_deref().unwrap_or("<missing>"),
                replay.as_deref().unwrap_or("<missing>")
            ),
        );
        return;
    }

    // Suppression ledger: every rate-limited alert is covered by a
    // summary or still pending at run end — exact accounting, no loss.
    let suppressed = journaled
        .iter()
        .filter(|e| matches!(e, Event::AlertSuppressed { .. }))
        .count() as u64;
    let coalesced: u64 = journaled
        .iter()
        .filter_map(|e| match e {
            Event::AlertCoalesced { suppressed, .. } => Some(*suppressed),
            _ => None,
        })
        .sum();
    if coalesced + edge.pending_suppressed() != suppressed {
        fail(
            out,
            "alert_suppression_correct",
            format!(
                "suppression ledger out of balance: {suppressed} suppressed, \
                 {coalesced} coalesced into summaries, {} still pending",
                edge.pending_suppressed()
            ),
        );
    }
}

/// The determinism contract: the journal is a pure function of the
/// scenario, so re-running at 2/4/8 worker threads must reproduce the
/// baseline journal byte-for-byte (and the same stage counts).
fn thread_journal_equivalence(report: &RunReport, out: &mut Vec<Violation>) {
    for threads in [2usize, 4, 8] {
        let rerun = execute_with_threads(&report.scenario, report.sabotage, threads);
        if rerun.journal != report.journal {
            fail(
                out,
                "thread_journal_equivalence",
                format!("journal diverged at {threads} threads"),
            );
        } else if rerun.counts != report.counts {
            fail(
                out,
                "thread_journal_equivalence",
                format!("stage counts diverged at {threads} threads"),
            );
        }
    }
}

/// The streaming driver must reproduce the offline tick loop's journal
/// byte-for-byte. Each rerun pairs a pool width with a different chunk
/// size (including a degenerate 1-tick chunk and chunks spanning many
/// refills) so both axes of the streaming machinery get exercised.
fn stream_journal_equivalence(report: &RunReport, out: &mut Vec<Violation>) {
    for (threads, chunk_ticks) in [(1usize, 1usize), (2, 7), (4, 32), (8, 125)] {
        let rerun =
            crate::scenario::execute_streamed(&report.scenario, report.sabotage, threads, chunk_ticks);
        if rerun.journal != report.journal {
            fail(
                out,
                "stream_journal_equivalence",
                format!("streamed journal diverged at {threads} threads, {chunk_ticks}-tick chunks"),
            );
        } else if rerun.counts != report.counts {
            fail(
                out,
                "stream_journal_equivalence",
                format!("streamed counts diverged at {threads} threads, {chunk_ticks}-tick chunks"),
            );
        } else if rerun.trace != report.trace {
            fail(
                out,
                "stream_journal_equivalence",
                format!("streamed trace diverged at {threads} threads, {chunk_ticks}-tick chunks"),
            );
        }
    }
}

/// The scheduler contract: the event-driven driver (`run_events`) —
/// which skips fully-idle ticks, charges sleepers lazily and maintains
/// an active set from a deadline heap instead of sweeping all N nodes
/// every tick — is an *optimization*, not a semantic change. Re-running
/// the scenario through it must reproduce the tick sweep's journal
/// byte-for-byte, plus identical stage counts, trace and a bit-equal
/// final clock.
fn scheduler_equivalence(report: &RunReport, out: &mut Vec<Violation>) {
    let rerun = crate::scenario::execute_events(&report.scenario, report.sabotage);
    if rerun.journal != report.journal {
        fail(
            out,
            "scheduler_equivalence",
            "event-driven journal diverged from the tick sweep".to_string(),
        );
    } else if rerun.counts != report.counts {
        fail(
            out,
            "scheduler_equivalence",
            "event-driven stage counts diverged from the tick sweep".to_string(),
        );
    } else if rerun.trace != report.trace {
        fail(
            out,
            "scheduler_equivalence",
            "event-driven trace diverged from the tick sweep".to_string(),
        );
    }
}

/// The region-sharding contract: partitioning the deployment into K
/// spatial shards — Phase A sensing fanned out per shard, radio
/// deliveries queued on per-shard scheduler lanes and merged back in
/// `(time, seq)` order — is an *execution strategy*, not a semantic
/// change. Three legs:
///
/// 1. sharded `run_events` reruns at K ∈ {2, 4} across 1/2/4/8 worker
///    threads must reproduce the unsharded journal, counts and trace
///    byte-for-byte;
/// 2. driving the same scenario through a `sid-serve` session in two
///    advance calls must land on the same journal bytes as the
///    single-call run (chunking the clock is invisible);
/// 3. a mid-episode checkpoint → migrate (different pool width *and*
///    shard count) → resume must land on that same fingerprint — the
///    resume integrity gate plus the final comparison pin the whole
///    migration path.
fn shard_equivalence(report: &RunReport, out: &mut Vec<Violation>) {
    use sid_serve::{SessionManager, SessionSpec};

    for (threads, shards) in [(1usize, 2usize), (4, 2), (2, 4), (8, 4)] {
        let rerun =
            crate::scenario::execute_sharded(&report.scenario, report.sabotage, threads, shards);
        if rerun.journal != report.journal {
            fail(
                out,
                "shard_equivalence",
                format!("sharded journal diverged at {threads} threads, {shards} shards"),
            );
        } else if rerun.counts != report.counts {
            fail(
                out,
                "shard_equivalence",
                format!("sharded counts diverged at {threads} threads, {shards} shards"),
            );
        } else if rerun.trace != report.trace {
            fail(
                out,
                "shard_equivalence",
                format!("sharded trace diverged at {threads} threads, {shards} shards"),
            );
        }
    }

    let scenario = &report.scenario;
    let sabotage = report.sabotage;
    let half = (scenario.duration / 2.0).floor().max(1.0);
    let rest = scenario.duration - half;

    // Leg 2: a continuous two-advance session must match the
    // single-call baseline journal bit-for-bit.
    let mut cont = SessionManager::with_threads(2);
    let c = cont.open(
        SessionSpec::new("dst", scenario.seed).with_shards(2),
        || scenario.build_bare(sabotage),
    );
    cont.advance(c, half).expect("session open");
    cont.advance(c, rest).expect("session open");
    let baseline = sid_obs::fnv1a(0, report.journal.as_bytes());
    let continuous = cont.session(c).expect("session open").fingerprint();
    if continuous != baseline {
        fail(
            out,
            "shard_equivalence",
            format!(
                "two-advance session journal diverged from the single-call run \
                 ({continuous:016x} vs {baseline:016x})"
            ),
        );
        return;
    }

    // Leg 3: checkpoint at the same split, migrate onto a different
    // pool width and shard count, finish, compare.
    let mut source = SessionManager::with_threads(1);
    let id = source.open(
        SessionSpec::new("dst", scenario.seed).with_shards(2),
        || scenario.build_bare(sabotage),
    );
    source.advance(id, half).expect("session open");
    let ckpt = source.checkpoint(id).expect("session open");
    let mut target = SessionManager::with_threads(4);
    let resumed = match target.resume_with_shards(&ckpt, 4, || scenario.build_bare(sabotage)) {
        Ok(id) => id,
        Err(err) => {
            fail(
                out,
                "shard_equivalence",
                format!("mid-episode migration rejected at the integrity gate: {err}"),
            );
            return;
        }
    };
    target.advance(resumed, rest).expect("session open");
    let migrated = target.session(resumed).expect("session open").fingerprint();
    if migrated != baseline {
        fail(
            out,
            "shard_equivalence",
            format!(
                "journal diverged across checkpoint/migrate/resume \
                 ({migrated:016x} vs {baseline:016x})"
            ),
        );
    }
}

/// The spectral front-end contract. Two [`sid_stream::StreamEngine`]s —
/// one on the default rfft + Goertzel + Parseval-wavelet fast path, one
/// on the legacy full-complex spectral path — consume an identical
/// seed-derived stream (a calm-harbor baseline with ship-like bursts)
/// and must agree on every discrete decision:
///
/// * alarms are bit-identical (the detector path never touches the
///   spectral front-end, so any difference is a wiring bug);
/// * window outputs pair up with equal node, end sample, peak frequency
///   and class verdict (the fast path's ≲1e-14 relative spectral error
///   cannot move a discrete verdict on a non-degenerate stream);
/// * the continuous wavelet observable (`low_frequency_fraction`)
///   stays within the documented 0.05 tolerance between the Parseval
///   fast path and the truncated time-domain convolution.
fn frontend_equivalence(report: &RunReport, out: &mut Vec<Violation>) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sid_core::FrontEnd;
    use sid_stream::{StreamConfig, StreamEngine, StreamOutput};

    const NODES: usize = 2;
    let mut fast_config = StreamConfig::paper_default();
    fast_config.classifier.stft.frame_len = 256;
    fast_config.classifier.stft.hop = 128;
    fast_config.ring_capacity = 512;
    let mut legacy_config = fast_config;
    fast_config.classifier.front_end = FrontEnd::Fast;
    legacy_config.classifier.front_end = FrontEnd::Legacy;

    // Seed-derived burst parameters: onset, amplitude and carrier vary
    // per scenario so the sweep covers alarm-heavy and quiet streams.
    let mut rng = StdRng::seed_from_u64(report.scenario.seed ^ 0x0F40_07E4);
    let fs = fast_config.detector.sample_rate;
    let total = (fs * 90.0) as usize;
    let bursts: Vec<(f64, f64, f64)> = (0..NODES)
        .map(|_| {
            (
                rng.gen_range(30.0..60.0),
                rng.gen_range(60.0..160.0),
                rng.gen_range(0.25..0.6),
            )
        })
        .collect();
    let sample = |node: usize, i: usize| -> f64 {
        let t = i as f64 / fs;
        let (t0, amp, carrier) = bursts[node];
        let env = (-0.5 * ((t - t0) / 1.5f64).powi(2)).exp();
        1024.0
            + 15.0 * (2.0 * std::f64::consts::PI * 0.3 * t).sin()
            + 5.0 * (2.0 * std::f64::consts::PI * 0.7 * t + 1.0).sin()
            + amp * env * (2.0 * std::f64::consts::PI * carrier * (t - t0)).sin()
    };

    let pool = sid_exec::Pool::new(1);
    let run = |config: StreamConfig| -> Vec<StreamOutput> {
        let mut engine = StreamEngine::new(config, NODES).expect("frontend config valid");
        let mut outputs = Vec::new();
        let mut start = 0usize;
        while start < total {
            let end = (start + 256).min(total);
            for node in 0..NODES {
                let chunk: Vec<f64> = (start..end).map(|i| sample(node, i)).collect();
                let accepted = engine.push_chunk(node, &chunk);
                debug_assert_eq!(accepted, chunk.len(), "ring sized for the chunk cadence");
            }
            outputs.extend(engine.pump(&pool));
            start = end;
        }
        outputs
    };
    let fast = run(fast_config);
    let legacy = run(legacy_config);

    if fast.len() != legacy.len() {
        fail(
            out,
            "frontend_equivalence",
            format!(
                "fast front-end produced {} outputs, legacy {}",
                fast.len(),
                legacy.len()
            ),
        );
        return;
    }
    if !fast
        .iter()
        .any(|o| matches!(o, StreamOutput::Window { .. }))
    {
        fail(
            out,
            "frontend_equivalence",
            "comparison stream completed no windows — the check is vacuous".to_string(),
        );
        return;
    }
    for (i, (f, l)) in fast.iter().zip(&legacy).enumerate() {
        match (f, l) {
            (
                StreamOutput::Alarm { node: fa, report: fr },
                StreamOutput::Alarm { node: la, report: lr },
            ) => {
                if fa != la || fr != lr {
                    fail(
                        out,
                        "frontend_equivalence",
                        format!("alarm {i} diverged between front-ends: {f:?} vs {l:?}"),
                    );
                    return;
                }
            }
            (
                StreamOutput::Window {
                    node: fa,
                    end_sample: fe,
                    peak_hz: fp,
                    classification: fc,
                },
                StreamOutput::Window {
                    node: la,
                    end_sample: le,
                    peak_hz: lp,
                    classification: lc,
                },
            ) => {
                if fa != la || fe != le || fp != lp || fc.class != lc.class {
                    fail(
                        out,
                        "frontend_equivalence",
                        format!("window {i} verdict diverged: {f:?} vs {l:?}"),
                    );
                    return;
                }
                let drift = (fc.low_frequency_fraction - lc.low_frequency_fraction).abs();
                if !drift.is_finite() || drift > 0.05 {
                    fail(
                        out,
                        "frontend_equivalence",
                        format!(
                            "window {i} wavelet observable drifted {drift:.4} \
                             (fast {:.4} vs legacy {:.4})",
                            fc.low_frequency_fraction, lc.low_frequency_fraction
                        ),
                    );
                    return;
                }
            }
            _ => {
                fail(
                    out,
                    "frontend_equivalence",
                    format!("output {i} kind diverged: {f:?} vs {l:?}"),
                );
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{execute, Scenario};

    fn clean_report() -> RunReport {
        // Seed 3 draws a small grid; keep the oracle unit tests cheap.
        let mut scenario = Scenario::generate(3);
        scenario.duration = 60.0;
        scenario.check_threads = false;
        scenario.check_stream = false;
        scenario.check_frontend = false;
        scenario.check_sched = false;
        scenario.check_shard = false;
        execute(&scenario, Sabotage::None)
    }

    #[test]
    fn frontend_equivalence_holds_on_seeded_streams() {
        let report = clean_report();
        let mut violations = Vec::new();
        frontend_equivalence(&report, &mut violations);
        assert!(violations.is_empty(), "unexpected violations: {violations:?}");
    }

    #[test]
    fn clean_run_passes_every_oracle() {
        let report = clean_report();
        let violations = check_all(&report);
        assert!(violations.is_empty(), "unexpected violations: {violations:?}");
    }

    #[test]
    fn tampered_journal_trips_the_matching_oracles() {
        let mut report = clean_report();
        // Splice in a report from a node that just died.
        report.events.push(Event::NodeDown {
            time: report.scenario.duration,
            node: 1,
            reason: "battery".to_string(),
        });
        report.events.push(Event::ReportEmitted {
            time: report.scenario.duration,
            node: 1,
            onset: 0.0,
            anomaly_frequency: 0.9,
            energy: 10.0,
        });
        let violations = check_all(&report);
        assert!(violations.iter().any(|v| v.oracle == "no_report_from_down_node"));
        // The splice also desynchronized the live counts from the journal.
        assert!(violations.iter().any(|v| v.oracle == "counts_match_journal"));
    }

    #[test]
    fn double_accept_and_bad_products_are_caught() {
        let mut report = clean_report();
        for _ in 0..2 {
            report.events.push(Event::SinkAccepted {
                time: report.scenario.duration,
                head: 7,
                incident: 0,
                correlation: 0.9,
            });
        }
        report.events.push(Event::ClusterEvaluated {
            time: report.scenario.duration,
            head: 7,
            reports: 5,
            rows: 4,
            correlation: 1.7,
            cnt: 1.3,
            cne: 1.3,
            quorum_met: true,
            confirmed: false,
            degraded: false,
        });
        let violations = check_all(&report);
        assert!(violations.iter().any(|v| v.oracle == "sink_no_double_accept"));
        assert!(violations.iter().any(|v| v.oracle == "cluster_products_in_range"));
        // incident 0 was legitimately fresh on its first accept; the
        // duplicate accept is the double-accept oracle's job, not the
        // id-allocation oracle's.
    }

    #[test]
    fn time_regression_is_caught() {
        let mut report = clean_report();
        report.events.push(Event::ClusterFormed {
            time: -1.0,
            head: 2,
        });
        let violations = check_all(&report);
        assert!(violations
            .iter()
            .any(|v| v.oracle == "time_monotone_and_bounded"));
    }
}
