//! Seeded scenario generation and execution.
//!
//! A [`Scenario`] is the *fully-expanded*, serializable description of
//! one simulation: grid shape, deployment style, sea state, ship
//! tracks, duty cycling, burst severity, dead-hardware fraction and the
//! explicit fault campaign. [`Scenario::generate`] draws all of it
//! deterministically from a single u64, and [`execute`] runs it through
//! the real pipeline with the journal attached. Because the scenario
//! carries the expanded fault events (not the fractions they were drawn
//! from), the shrinker can prune it field-by-field and replay the rest
//! byte-for-byte.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sid_alert::AlertConfig;
use sid_core::{DetectionRetune, DutyCycleConfig, IntrusionDetectionSystem, SystemConfig, SystemTrace};
use sid_net::{FaultEvent, FaultPlan, FaultPlanConfig, GilbertElliott, Position, Topology};
use sid_obs::{Event, Obs, StageCounts, WallStats};
use sid_ocean::{Angle, Knots, Scene, SeaState, Ship, ShipWaveModel, Vec2, WaveSpectrum};
use sid_stream::{StreamDriverConfig, StreamExt};

/// Which wave spectrum the scenario's sea is synthesized from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeaKind {
    /// Near-flat water.
    Calm,
    /// The paper's deployment environment (breakwater-sheltered harbor).
    ShelteredHarbor,
    /// Open-water chop well above the harbor level.
    Moderate,
}

impl SeaKind {
    fn spectrum(self) -> WaveSpectrum {
        match self {
            SeaKind::Calm => WaveSpectrum::calm_sea(),
            SeaKind::ShelteredHarbor => WaveSpectrum::sheltered_harbor(),
            SeaKind::Moderate => WaveSpectrum::moderate_sea(),
        }
    }
}

/// One intruding ship: start point, heading and speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShipSpec {
    /// Start east coordinate (m).
    pub x: f64,
    /// Start north coordinate (m).
    pub y: f64,
    /// Heading, degrees counter-clockwise from east.
    pub heading_deg: f64,
    /// Speed in knots.
    pub knots: f64,
}

/// Fleet-class deployment parameters: a free-form coastline of
/// clustered buoys, far past the paper's grids in size. Present only on
/// scenarios produced by [`Scenario::fleet`]; when set it overrides the
/// grid fields for placement and node count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Total deployed nodes (including the sink). 200–2000 as
    /// generated; the shrinker may halve it down to
    /// [`crate::shrink::FLEET_MIN_NODES`].
    pub nodes: usize,
    /// Number of placement clusters strung along the coastline strip.
    pub clusters: usize,
    /// Scatter radius around each cluster centre (m).
    pub cluster_radius: f64,
    /// Sentinel stride: node `i` keeps permanent watch iff
    /// `i % sentinel_every == 0` (applied via
    /// `with_sentinel_index_stride`; the grid row/col stride is
    /// meaningless on a free-form fleet).
    pub sentinel_every: usize,
}

/// A fully-expanded, serializable simulation scenario.
///
/// Everything the pipeline needs is spelled out here; no further
/// randomness is drawn at execution time beyond the pipeline's own
/// seeded streams. Shrinking mutates these fields directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The generating seed; also seeds the pipeline's internal streams.
    pub seed: u64,
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Grid spacing D (m).
    pub spacing: f64,
    /// Deploy on jittered (non-grid) anchor positions instead of the
    /// exact grid: exercises the free-form `with_topology` path where
    /// the cluster stage has no row/column structure to correlate over.
    pub free_form: bool,
    /// Simulated seconds to run.
    pub duration: f64,
    /// Sea spectrum.
    pub sea: SeaKind,
    /// Wave components synthesized for the sea surface.
    pub sea_components: usize,
    /// Intruding ships (possibly none: quiet-sea false-alarm pressure).
    pub ships: Vec<ShipSpec>,
    /// Duty-cycled power management on/off.
    pub duty_cycle: bool,
    /// Gilbert–Elliott burst severity in `[0, 1]`; `0` disables bursts.
    pub burst_severity: f64,
    /// Fraction of nodes with dead detection hardware.
    pub dead_node_fraction: f64,
    /// The expanded fault campaign (explicit so it can be shrunk).
    pub faults: Vec<FaultEvent>,
    /// Rerun at 2/4/8 worker threads and require byte-identical
    /// journals. Set on a deterministic subset of seeds — every run
    /// costs 3 extra simulations.
    pub check_threads: bool,
    /// Rerun through the `sid-stream` driver (1/2/4/8 threads, varied
    /// chunk sizes) and require byte-identical journals to the offline
    /// tick loop. Set on a deterministic subset of seeds — every run
    /// costs 4 extra simulations.
    pub check_stream: bool,
    /// Alert-storm campaign: a convoy of staggered intruders under
    /// Gilbert–Elliott burst loss with a deliberately tight alert
    /// token bucket, plus a scheduled invalid + valid detection hot
    /// reload mid-storm. Exercises storm suppression, coalescing and
    /// reload atomicity; checked by the `alert_suppression_correct`
    /// oracle. Set on a deterministic subset of seeds.
    pub alert_storm: bool,
    /// Rerun a seed-derived synthetic stream through two `StreamEngine`s
    /// — the default rfft/Goertzel/Parseval fast front-end vs. the
    /// legacy full-complex spectral path — and require every discrete
    /// decision to agree (`frontend_equivalence` oracle). Set on a
    /// deterministic subset of seeds.
    pub check_frontend: bool,
    /// Rerun through the event-driven scheduler (`run_events`) and
    /// require a byte-identical journal, stage counts, trace and final
    /// clock to the fixed-tick sweep (`scheduler_equivalence` oracle).
    /// Set on a deterministic subset of seeds — every run costs one
    /// extra simulation.
    pub check_sched: bool,
    /// Rerun with the deployment partitioned into K ∈ {2, 4} spatial
    /// shards at several pool widths — plus one mid-episode
    /// checkpoint/migrate/resume through `sid-serve` — and require
    /// byte-identical journals throughout (`shard_equivalence` oracle).
    /// Set on a deterministic subset of seeds.
    pub check_shard: bool,
    /// Fleet-class deployment ([`Scenario::fleet`]): `Some` overrides
    /// the grid fields with a clustered free-form coastline of 200–2000
    /// duty-cycled nodes. [`Scenario::generate`] always leaves this
    /// `None`, so the historical seed population is untouched.
    pub fleet: Option<FleetSpec>,
}

/// An intentionally-broken pipeline configuration, used to prove the
/// oracle + shrinker layers actually catch bugs (the harness's own
/// "fire drill"). [`Sabotage::None`] is the production path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Sabotage {
    /// Build the scenario faithfully.
    #[default]
    None,
    /// Gut the cluster quorum: one report, one row and any correlation
    /// confirm a detection. The `confirmed_implies_quorum` oracle —
    /// which checks the paper's nominal thresholds — must catch this.
    LooseQuorum,
}

impl Scenario {
    /// Expands `seed` into a full scenario. Deterministic: the same
    /// seed always yields the identical scenario.
    ///
    /// ```
    /// use sid_dst::Scenario;
    ///
    /// let a = Scenario::generate(42);
    /// assert_eq!(a, Scenario::generate(42));
    /// assert!(a.rows >= 3 && a.cols >= 3 && a.duration >= 60.0);
    /// // Expensive equivalence reruns ride on arithmetic seed subsets,
    /// // not RNG draws, so they never perturb the rest of the scenario.
    /// assert_eq!(a.check_threads, 42 % 16 == 0);
    /// assert_eq!(a.check_stream, 42 % 4 == 0);
    /// assert_eq!(a.alert_storm, 42 % 8 == 0);
    /// assert_eq!(a.check_frontend, 42 % 32 == 0);
    /// assert_eq!(a.check_sched, 42 % 4 == 2);
    /// assert_eq!(a.check_shard, 42 % 8 == 5);
    /// ```
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed);
        let rows = rng.gen_range(3..=6);
        let cols = rng.gen_range(3..=6);
        let spacing = 25.0;
        let free_form = rng.gen_bool(0.15);
        // Whole seconds keep the scenario JSON readable and the tick
        // count exact.
        let duration = rng.gen_range(60..=150) as f64;
        let sea = match rng.gen_range(0..10) {
            0..=4 => SeaKind::ShelteredHarbor,
            5..=7 => SeaKind::Calm,
            _ => SeaKind::Moderate,
        };
        let sea_components = rng.gen_range(48..=96);
        let grid_width = (cols - 1) as f64 * spacing;
        let ship_count = rng.gen_range(0..=2);
        let ships = (0..ship_count)
            .map(|_| {
                // Mostly northbound passages that cross the grid early
                // enough to be seen inside short runs; occasionally an
                // arbitrary heading that may miss the field entirely.
                if rng.gen_bool(0.8) {
                    ShipSpec {
                        x: rng.gen_range(-0.2..1.2) * grid_width.max(spacing),
                        y: rng.gen_range(-150.0..-60.0),
                        heading_deg: 90.0,
                        knots: rng.gen_range(6.0..18.0),
                    }
                } else {
                    ShipSpec {
                        x: rng.gen_range(-200.0..200.0),
                        y: rng.gen_range(-200.0..-50.0),
                        heading_deg: rng.gen_range(0.0..360.0),
                        knots: rng.gen_range(6.0..18.0),
                    }
                }
            })
            .collect();
        let duty_cycle = rng.gen_bool(0.2);
        let burst_severity = if rng.gen_bool(0.5) {
            0.0
        } else {
            rng.gen_range(0.1..=1.0)
        };
        let dead_node_fraction = if rng.gen_bool(0.7) {
            0.0
        } else {
            rng.gen_range(0.05..0.2)
        };
        // The fault campaign is expanded here (not at build time) so the
        // scenario owns an explicit, prunable event list. Intensity 0
        // with some probability keeps a clean-run population in the mix.
        let fault_intensity = if rng.gen_bool(0.4) {
            0.0
        } else {
            rng.gen_range(0.1..=1.0)
        };
        let fault_cfg = FaultPlanConfig {
            // Node 0 is the sink (wired gateway): it never dies.
            spare: Some(0),
            ..FaultPlanConfig::chaos(fault_intensity, duration)
        };
        let faults = FaultPlan::generate(rows * cols, &fault_cfg, seed ^ 0xDE7E_C7ED)
            .events()
            .to_vec();
        let mut scenario = Scenario {
            seed,
            rows,
            cols,
            spacing,
            free_form,
            duration,
            sea,
            sea_components,
            ships,
            duty_cycle,
            burst_severity,
            dead_node_fraction,
            faults,
            check_threads: seed.is_multiple_of(16),
            // Every fourth seed: 50 streaming-equivalence scenarios in
            // the default 200-seed smoke range. Derived from the seed
            // (no RNG draw) so adding the flag didn't disturb any
            // previously generated scenario.
            check_stream: seed.is_multiple_of(4),
            // Every eighth seed: 25 alert-storm campaigns in the smoke
            // range. Like the equivalence flags, derived arithmetically
            // *after* every RNG draw so the campaign overrides below
            // never perturb how other scenarios generate.
            alert_storm: seed.is_multiple_of(8),
            // Every 32nd seed: the fast-vs-legacy spectral front-end
            // comparison (two extra streaming engine runs). Arithmetic
            // like its siblings, so no existing scenario changed.
            check_frontend: seed.is_multiple_of(32),
            // Every fourth seed (offset from `check_stream` so the two
            // populations are disjoint): the event-driven scheduler
            // equivalence rerun. Arithmetic like its siblings — derived
            // after every RNG draw, so no existing scenario changed.
            check_sched: seed % 4 == 2,
            // Every eighth seed, offset to stay disjoint from the other
            // equivalence populations (`%8==5` is odd, so it never
            // overlaps the %4/%8/%16/%32 == 0 subsets or `%4==2`): the
            // region-sharding equivalence rerun with a mid-episode
            // migration. Arithmetic like its siblings — derived after
            // every RNG draw, so no existing scenario changed.
            check_shard: seed % 8 == 5,
            fleet: None,
        };
        if scenario.alert_storm {
            // Storm overrides: a convoy of three staggered northbound
            // intruders crossing the same lanes ~75 s apart. The gap is
            // deliberately just past the 60 s cluster collection window:
            // closer passages overlap inside one window and wreck the
            // temporal correlation CNt (a convoy is not one coherent
            // wake), while 75 s gives each passage its own clean
            // confirmation. Against the slow-refill token bucket (see
            // `alert_config`) those repeat confirmations of one merged
            // incident become suppressions and coalesced summaries.
            // Burst loss stays on, but moderate (0.35): heavier GE loss
            // starves the report quorum and the storm never ignites.
            // Exact-grid deployment for the same reason — free-form
            // layouts skip row/column correlation entirely.
            scenario.duration = scenario.duration.max(300.0);
            scenario.free_form = false;
            scenario.burst_severity = 0.35;
            scenario.dead_node_fraction = 0.0;
            // The nominal confirmation quorum spans 4 grid rows; a
            // 3-row storm grid could never confirm anything. (Fault
            // events were expanded for the smaller grid; they stay
            // valid — high-index nodes just never get scheduled.)
            scenario.rows = scenario.rows.max(4);
            scenario.ships = (0..3)
                .map(|k| ShipSpec {
                    x: grid_width.max(spacing) * (0.3 + 0.1 * (k % 3) as f64),
                    y: -77.0 - 386.0 * k as f64,
                    heading_deg: 90.0,
                    knots: 10.0,
                })
                .collect();
        }
        scenario
    }

    /// Expands `seed` into a fleet-class scenario: a free-form coastline
    /// of 200–2000 clustered, duty-cycled buoys with sparse index-stride
    /// sentinels. Deterministic like [`Scenario::generate`], and built
    /// *on top of it* — the base draws happen first, then the fleet
    /// overrides — so the two populations can never interleave their
    /// RNG streams.
    ///
    /// Every fleet scenario sets `check_sched`, so the
    /// `scheduler_equivalence` oracle re-runs it through `run_events`
    /// and requires a byte-identical journal: the fuzzer exercises
    /// large non-grid deployments end-to-end through the event loop on
    /// every fleet seed. The expensive small-grid equivalence reruns
    /// (threads/stream/front-end) and the alert-storm campaign are
    /// forced off — they scale with node count and have their own
    /// dedicated populations.
    ///
    /// ```
    /// use sid_dst::Scenario;
    ///
    /// let f = Scenario::fleet(7);
    /// let spec = f.fleet.expect("fleet class");
    /// assert!((200..=2000).contains(&spec.nodes));
    /// assert_eq!(f.node_count(), spec.nodes);
    /// assert!(f.free_form && f.duty_cycle && f.check_sched);
    /// assert_eq!(f, Scenario::fleet(7));
    /// ```
    pub fn fleet(seed: u64) -> Self {
        let mut scenario = Self::generate(seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA24B_AED4_963E_E407) ^ 0xF1EE7);
        let nodes: usize = rng.gen_range(200..=2000);
        let clusters: usize = rng.gen_range(4..=12);
        let cluster_radius = rng.gen_range(60.0..=120.0);
        // Sparse sentinels: aim for ~8–24 permanently-awake nodes
        // regardless of fleet size, so the per-tick sensing load stays
        // bounded while the rest of the fleet sleeps.
        let sentinel_every = (nodes / rng.gen_range(8usize..=24)).max(8);
        scenario.fleet = Some(FleetSpec {
            nodes,
            clusters,
            cluster_radius,
            sentinel_every,
        });
        scenario.free_form = true;
        scenario.duty_cycle = true;
        scenario.alert_storm = false;
        scenario.check_threads = false;
        scenario.check_stream = false;
        scenario.check_frontend = false;
        scenario.check_sched = true;
        // Sharded reruns scale with node count like the other
        // equivalence legs; the small-grid `check_shard` population
        // owns that invariant.
        scenario.check_shard = false;
        scenario.duration = rng.gen_range(45..=90) as f64;
        scenario.sea_components = rng.gen_range(32..=64);
        // Re-expand the fault campaign for the fleet's node count (the
        // base campaign was drawn for the small grid). Moderate
        // intensity: fleet seeds probe scale, not maximum chaos.
        let fault_intensity = if rng.gen_bool(0.5) {
            0.0
        } else {
            rng.gen_range(0.05..=0.4)
        };
        let fault_cfg = FaultPlanConfig {
            spare: Some(0),
            ..FaultPlanConfig::chaos(fault_intensity, scenario.duration)
        };
        scenario.faults = FaultPlan::generate(nodes, &fault_cfg, seed ^ 0xF1EE_7FA7)
            .events()
            .to_vec();
        // Ships rewritten to cross the coastline strip the clusters
        // occupy (see `topology`): northbound passages that can reach a
        // cluster within the shortened run.
        let strip_width = clusters as f64 * 180.0;
        let ship_count = rng.gen_range(0..=2);
        scenario.ships = (0..ship_count)
            .map(|_| ShipSpec {
                x: rng.gen_range(0.0..strip_width),
                y: rng.gen_range(-120.0..-50.0),
                heading_deg: 90.0,
                knots: rng.gen_range(6.0..18.0),
            })
            .collect();
        scenario
    }

    /// The alerting-edge configuration this scenario runs with: storm
    /// campaigns get a deliberately tight token bucket (one alert, then
    /// 300 s to earn the next — longer than the whole convoy takes to
    /// pass) with a 30 s summary deadline, so the repeat confirmations
    /// the convoy produces are guaranteed to hit an empty bucket and be
    /// suppressed into coalesced summaries. Everything else keeps the
    /// production default.
    pub fn alert_config(&self) -> AlertConfig {
        if self.alert_storm {
            AlertConfig {
                bucket_capacity: 1.0,
                refill_per_sec: 1.0 / 300.0,
                summary_after_secs: 30.0,
                retain: 256,
            }
        } else {
            AlertConfig::default()
        }
    }

    /// The detection hot reloads this scenario schedules: storm
    /// campaigns fire an *invalid* reload mid-storm (`af_threshold`
    /// out of domain — must be rejected with a journaled reason while
    /// the run keeps going) followed by a valid detector tightening.
    /// The `alert_suppression_correct` oracle replays both decisions.
    pub fn retunes(&self) -> Vec<(f64, DetectionRetune)> {
        if !self.alert_storm {
            return Vec::new();
        }
        vec![
            (
                0.3 * self.duration,
                DetectionRetune {
                    af_threshold: Some(1.5),
                    ..DetectionRetune::default()
                },
            ),
            (
                // A mild tightening: strict enough to observably change
                // the config, loose enough that the convoy's later
                // passages still confirm and keep storming the edge.
                0.5 * self.duration,
                DetectionRetune {
                    af_threshold: Some(0.65),
                    m: Some(2.1),
                    ..DetectionRetune::default()
                },
            ),
        ]
    }

    /// Total nodes deployed: the grid product, or the fleet size for
    /// fleet-class scenarios.
    pub fn node_count(&self) -> usize {
        self.fleet.map_or(self.rows * self.cols, |f| f.nodes)
    }

    /// The `SystemConfig` this scenario builds, with `sabotage` applied.
    /// The invariant oracles always check against the *nominal*
    /// (un-sabotaged) thresholds, which is exactly how a sabotaged build
    /// gets caught.
    pub fn config(&self, sabotage: Sabotage) -> SystemConfig {
        let mut config = SystemConfig {
            burst: if self.burst_severity > 0.0 {
                GilbertElliott::sea_surface(self.burst_severity)
            } else {
                GilbertElliott::disabled()
            },
            dead_node_fraction: self.dead_node_fraction,
            duty_cycle: if self.fleet.is_some() {
                // Fleet runs shorten the wake window: an alarm in a
                // dense cluster wakes hundreds of neighbors, and the
                // default 180 s window would keep them all sensing for
                // most of the (45–90 s) run.
                DutyCycleConfig {
                    enabled: true,
                    wake_duration: 45.0,
                    ..DutyCycleConfig::default()
                }
            } else {
                DutyCycleConfig {
                    enabled: self.duty_cycle,
                    ..DutyCycleConfig::default()
                }
            },
            ..SystemConfig::paper_default(self.rows, self.cols)
        };
        // The campaign is injected explicitly via `replace_fault_plan`;
        // leave the config's own fractions quiet.
        config.faults = FaultPlanConfig {
            spare: Some(0),
            ..FaultPlanConfig::default()
        };
        config.alert = self.alert_config();
        if sabotage == Sabotage::LooseQuorum {
            config.cluster.min_reports = 1;
            config.cluster.correlation.min_rows = 1;
            config.cluster.correlation.c_threshold = 0.0;
        }
        config
    }

    /// Synthesizes the ground-truth scene (sea + ships).
    pub fn scene(&self) -> Scene {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5EA_5CE9E);
        let sea = SeaState::synthesize(self.sea.spectrum(), self.sea_components, &mut rng);
        let mut scene = Scene::new(sea, ShipWaveModel::default());
        for ship in &self.ships {
            scene.add_ship(Ship::new(
                Vec2::new(ship.x, ship.y),
                Angle::from_degrees(ship.heading_deg),
                Knots::new(ship.knots),
            ));
        }
        scene
    }

    /// The deployment topology: the exact grid, or — for `free_form`
    /// scenarios — the same anchors jittered off the lattice (which
    /// drops the row/column structure the cluster stage correlates on).
    pub fn topology(&self) -> Topology {
        let config = self.config(Sabotage::None);
        if let Some(f) = self.fleet {
            // A coastline strip: cluster centres strung eastward every
            // 180 m with jitter, nodes scattered round-robin about
            // them. Node 0 (the sink) sits at the first centre. The
            // RNG draws two values per node in index order, so
            // shrinking `nodes` keeps the surviving prefix of
            // positions bit-identical. At fleet sizes (≥ 200 ≥
            // `SPATIAL_HASH_THRESHOLD`) `from_positions` takes the
            // spatial-hash index path automatically.
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0xF1EE_70B0);
            let centres: Vec<(f64, f64)> = (0..f.clusters)
                .map(|k| {
                    (
                        k as f64 * 180.0 + rng.gen_range(-40.0..40.0),
                        rng.gen_range(0.0..260.0),
                    )
                })
                .collect();
            let positions: Vec<Position> = (0..f.nodes)
                .map(|i| {
                    let (cx, cy) = centres[i % f.clusters];
                    let dx = rng.gen_range(-1.0..1.0) * f.cluster_radius;
                    let dy = rng.gen_range(-1.0..1.0) * f.cluster_radius;
                    if i == 0 {
                        // Sink at the first centre, exactly.
                        Position { x: centres[0].0, y: centres[0].1 }
                    } else {
                        Position { x: cx + dx, y: cy + dy }
                    }
                })
                .collect();
            return Topology::from_positions(positions, config.radio_range);
        }
        if !self.free_form {
            return Topology::grid(self.rows, self.cols, self.spacing, config.radio_range);
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xF9EE_F09A);
        let positions: Vec<Position> = (0..self.node_count())
            .map(|i| {
                let row = (i / self.cols) as f64;
                let col = (i % self.cols) as f64;
                Position {
                    x: col * self.spacing + rng.gen_range(-0.3..0.3) * self.spacing,
                    y: row * self.spacing + rng.gen_range(-0.3..0.3) * self.spacing,
                }
            })
            .collect();
        Topology::from_positions(positions, config.radio_range)
    }

    /// The explicit fault campaign as a replayable plan.
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::from_events(self.faults.clone())
    }

    /// Builds the system *without* a journal or worker pool attached:
    /// the builder contract `sid-serve` session managers expect (they
    /// wire in their own in-memory journal, shared pool and shard
    /// partition). Fault plan, sentinel mask and scheduled retunes are
    /// all in place.
    pub fn build_bare(&self, sabotage: Sabotage) -> IntrusionDetectionSystem {
        let mut sys = IntrusionDetectionSystem::with_topology(
            self.scene(),
            self.config(sabotage),
            self.seed,
            self.topology(),
        )
        .replace_fault_plan(self.fault_plan());
        if let Some(f) = self.fleet {
            // Free-form fleets have no grid rows for the stride-based
            // sentinel lattice; swap in the index-stride mask.
            sys = sys.with_sentinel_index_stride(f.sentinel_every);
        }
        for (at, retune) in self.retunes() {
            sys.schedule_retune(at, retune);
        }
        sys
    }

    /// Builds the ready-to-run system (journal attached, worker pool of
    /// `threads`).
    pub fn build(&self, sabotage: Sabotage, obs: Obs, threads: usize) -> IntrusionDetectionSystem {
        self.build_bare(sabotage)
            .with_obs(obs)
            .with_pool(Arc::new(sid_exec::Pool::new(threads)))
    }
}

/// Everything one execution produced, for the oracles.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The sabotage mode it was built with.
    pub sabotage: Sabotage,
    /// The recorded journal, in order.
    pub events: Vec<Event>,
    /// The recorder's live stage-count aggregation.
    pub counts: StageCounts,
    /// Wall-clock stats (gauges/counters; non-deterministic section).
    pub wall: WallStats,
    /// The pipeline's own run trace.
    pub trace: SystemTrace,
    /// The canonical JSONL rendering of `events`.
    pub journal: String,
}

/// Runs a scenario at a given worker-pool size and collects the journal.
pub fn execute_with_threads(scenario: &Scenario, sabotage: Sabotage, threads: usize) -> RunReport {
    let obs = Obs::in_memory();
    let mut sys = scenario.build(sabotage, obs.clone(), threads);
    sys.run(scenario.duration);
    let events = obs.events().expect("in-memory recorder keeps events");
    let journal = sid_obs::render_journal(&events);
    RunReport {
        scenario: scenario.clone(),
        sabotage,
        events,
        counts: obs.counts(),
        wall: obs.wall(),
        trace: sys.trace().clone(),
        journal,
    }
}

/// Runs a scenario on a single-thread pool (the cheapest deterministic
/// baseline; `check_threads` scenarios are additionally re-run at 2/4/8
/// threads by [`crate::oracle::check_all`]).
pub fn execute(scenario: &Scenario, sabotage: Sabotage) -> RunReport {
    execute_with_threads(scenario, sabotage, 1)
}

/// Runs a scenario through the `sid-stream` driver instead of the
/// offline tick loop: environment samples are synthesized in
/// `chunk_ticks` blocks on the pool and consumed from bounded per-node
/// rings. The report must be byte-identical to [`execute_with_threads`]
/// at any `(threads, chunk_ticks)` — the `stream_journal_equivalence`
/// oracle enforces exactly that.
pub fn execute_streamed(
    scenario: &Scenario,
    sabotage: Sabotage,
    threads: usize,
    chunk_ticks: usize,
) -> RunReport {
    let obs = Obs::in_memory();
    let sys = scenario.build(sabotage, obs.clone(), threads);
    let mut stream = sys.stream_with(StreamDriverConfig::with_chunk(chunk_ticks));
    stream.run(scenario.duration);
    let events = obs.events().expect("in-memory recorder keeps events");
    let journal = sid_obs::render_journal(&events);
    let sys = stream.into_inner();
    RunReport {
        scenario: scenario.clone(),
        sabotage,
        events,
        counts: obs.counts(),
        wall: obs.wall(),
        trace: sys.trace().clone(),
        journal,
    }
}

/// Runs a scenario through the event-driven scheduler ([`run_events`])
/// instead of the fixed-tick sweep: idle ticks are skipped outright and
/// sleeping nodes are charged lazily from a deadline heap. The report
/// must be byte-identical to [`execute`] — the `scheduler_equivalence`
/// oracle enforces exactly that.
///
/// [`run_events`]: IntrusionDetectionSystem::run_events
pub fn execute_events(scenario: &Scenario, sabotage: Sabotage) -> RunReport {
    let obs = Obs::in_memory();
    let mut sys = scenario.build(sabotage, obs.clone(), 1);
    sys.run_events(scenario.duration);
    let events = obs.events().expect("in-memory recorder keeps events");
    let journal = sid_obs::render_journal(&events);
    RunReport {
        scenario: scenario.clone(),
        sabotage,
        events,
        counts: obs.counts(),
        wall: obs.wall(),
        trace: sys.trace().clone(),
        journal,
    }
}

/// Runs a scenario through the event-driven scheduler with the
/// deployment partitioned into `shards` spatial regions advancing on
/// concurrent scheduler lanes (cross-shard radio deliveries merge back
/// in deterministic `(time, seq)` order). The report must be
/// byte-identical to [`execute`] at any `(threads, shards)` — the
/// `shard_equivalence` oracle enforces exactly that.
pub fn execute_sharded(
    scenario: &Scenario,
    sabotage: Sabotage,
    threads: usize,
    shards: usize,
) -> RunReport {
    let obs = Obs::in_memory();
    let mut sys = scenario.build(sabotage, obs.clone(), threads).with_shards(shards);
    sys.run_events(scenario.duration);
    let events = obs.events().expect("in-memory recorder keeps events");
    let journal = sid_obs::render_journal(&events);
    RunReport {
        scenario: scenario.clone(),
        sabotage,
        events,
        counts: obs.counts(),
        wall: obs.wall(),
        trace: sys.trace().clone(),
        journal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = Scenario::generate(42);
        let b = Scenario::generate(42);
        assert_eq!(a, b);
        let c = Scenario::generate(43);
        assert_ne!(a, c);
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let s = Scenario::generate(9);
        let json = serde_json::to_string(&s).expect("serialize");
        let back: Scenario = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, s);
    }

    #[test]
    fn generated_population_covers_the_feature_space() {
        let scenarios: Vec<Scenario> = (0..64).map(Scenario::generate).collect();
        assert!(scenarios.iter().any(|s| s.free_form));
        assert!(scenarios.iter().any(|s| !s.free_form));
        assert!(scenarios.iter().any(|s| s.ships.is_empty()));
        assert!(scenarios.iter().any(|s| s.ships.len() == 2));
        assert!(scenarios.iter().any(|s| !s.faults.is_empty()));
        assert!(scenarios.iter().any(|s| s.faults.is_empty()));
        assert!(scenarios.iter().any(|s| s.duty_cycle));
        assert!(scenarios.iter().any(|s| s.burst_severity > 0.0));
        assert!(scenarios.iter().any(|s| s.check_threads));
        assert!(scenarios.iter().any(|s| !s.check_threads));
        assert!(scenarios.iter().any(|s| s.check_stream));
        assert!(scenarios.iter().any(|s| !s.check_stream));
        assert!(scenarios.iter().any(|s| s.alert_storm));
        assert!(scenarios.iter().any(|s| !s.alert_storm));
        assert!(scenarios.iter().any(|s| s.check_frontend));
        assert!(scenarios.iter().any(|s| !s.check_frontend));
        assert!(scenarios.iter().any(|s| s.check_sched));
        assert!(scenarios.iter().any(|s| !s.check_sched));
        assert!(scenarios.iter().any(|s| s.check_shard));
        assert!(scenarios.iter().any(|s| !s.check_shard));
        // The shard population never overlaps the other expensive
        // equivalence reruns (disjoint arithmetic subsets).
        assert!(scenarios
            .iter()
            .all(|s| !(s.check_shard && (s.check_threads || s.check_stream || s.check_sched))));
        for s in &scenarios {
            if s.alert_storm {
                assert_eq!(s.duration, 300.0);
            } else {
                assert!(s.duration >= 60.0 && s.duration <= 150.0);
            }
            assert!(s.node_count() >= 9 && s.node_count() <= 36);
            // The sink must never be scheduled for a fault.
            assert!(s.faults.iter().all(|f| f.node != 0));
            if s.alert_storm {
                // Storm overrides hold: a three-ship convoy on the
                // exact grid under burst loss, long enough to storm,
                // with a tight bucket and a two-step reload script.
                assert_eq!(s.ships.len(), 3);
                assert!(!s.free_form);
                assert!(s.rows >= 4);
                assert_eq!(s.burst_severity, 0.35);
                assert_eq!(s.dead_node_fraction, 0.0);
                assert_eq!(s.alert_config().bucket_capacity, 1.0);
                assert_eq!(s.retunes().len(), 2);
            } else {
                assert_eq!(s.alert_config(), sid_alert::AlertConfig::default());
                assert!(s.retunes().is_empty());
            }
        }
    }

    #[test]
    fn sabotage_loosens_only_the_cluster_quorum() {
        let s = Scenario::generate(5);
        let nominal = s.config(Sabotage::None);
        let broken = s.config(Sabotage::LooseQuorum);
        assert_eq!(broken.cluster.min_reports, 1);
        assert_eq!(broken.cluster.correlation.min_rows, 1);
        assert_eq!(broken.cluster.correlation.c_threshold, 0.0);
        assert_eq!(nominal.rows, broken.rows);
        assert_eq!(nominal.radio_range, broken.radio_range);
    }
}
