//! # sid-dst
//!
//! Deterministic simulation testing (DST) for the SID reproduction, in
//! the FoundationDB style: a single u64 seed deterministically expands
//! into a full scenario (topology, ship tracks, sea state, duty cycling,
//! burst losses, fault campaign), the scenario runs through the real
//! pipeline with the `sid-obs` journal attached, and the journal is
//! replayed through a battery of invariant oracles. When an oracle
//! fires, an automatic shrinker greedily minimizes the scenario while
//! the violation persists and emits a minimal repro (seed + scenario
//! JSON + violated oracle).
//!
//! The three layers:
//!
//! * [`Scenario`] — seeded scenario generation and execution
//!   ([`Scenario::generate`], [`execute`]).
//! * [`oracle`] — journal-driven invariants ([`oracle::check_all`]).
//! * [`mod@shrink`] — greedy scenario minimization
//!   ([`shrink::shrink`], [`FailureRecord`]).
//!
//! Everything downstream of the seed is deterministic: the same seed
//! yields the same scenario, the same journal bytes at any worker-pool
//! size, and therefore the same oracle verdicts. See DESIGN.md §11.
//!
//! ```
//! use sid_dst::{execute, oracle, Sabotage, Scenario};
//!
//! let scenario = Scenario::generate(7);
//! let report = execute(&scenario, Sabotage::None);
//! assert!(oracle::check_all(&report).is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod oracle;
pub mod scenario;
pub mod shrink;

pub use oracle::{check_all, Violation};
pub use scenario::{
    execute, execute_events, execute_sharded, execute_streamed, execute_with_threads, FleetSpec,
    RunReport, Sabotage, Scenario, SeaKind, ShipSpec,
};
pub use shrink::{shrink, FailureRecord, ShrinkResult, SHRINK_BUDGET};
