//! Greedy scenario minimization.
//!
//! When an oracle fires on a generated scenario, replaying the full
//! scenario is a poor starting point for debugging: it may carry two
//! ships, a 150-second run, dozens of scheduled faults and a 36-node
//! grid when only one ship and twenty seconds matter. [`shrink`]
//! greedily applies size-reducing transformations — shorter run, fewer
//! faults, fewer ships, smaller grid, features switched off — and keeps
//! a candidate only if the *same* oracle still fails on it, restarting
//! the pass after every acceptance. The result (plus the violation it
//! reproduces) is persisted as a [`FailureRecord`] in
//! `results/DST_failures.json`.

use serde::{Deserialize, Serialize};

use crate::oracle::check_all;
use crate::scenario::{execute, Sabotage, Scenario};

/// Default cap on simulation runs one shrink may spend. Each candidate
/// costs one full simulation, so the budget bounds shrink latency.
pub const SHRINK_BUDGET: usize = 64;

/// Floor for shrunk run durations (s): long enough for a report quorum
/// to assemble, short enough to step through in a debugger session.
const MIN_DURATION: f64 = 20.0;

/// Floor for shrunk fleet sizes. Still comfortably above
/// [`sid_net::SPATIAL_HASH_THRESHOLD`], so a shrunk fleet repro keeps
/// exercising the spatial-hash index path that full-size fleets take.
pub const FLEET_MIN_NODES: usize = 100;

/// A minimal repro for one violated invariant, as persisted to
/// `results/DST_failures.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// The originating seed (replay with `dst --seed <n>`).
    pub seed: u64,
    /// The violated oracle's stable name.
    pub oracle: String,
    /// The violation detail from the *original* (pre-shrink) run.
    pub detail: String,
    /// The minimized scenario that still reproduces the violation.
    pub scenario: Scenario,
    /// Simulation runs the shrinker spent.
    pub shrink_iterations: usize,
    /// Whether any transformation was accepted (false: the original
    /// scenario was already minimal, or the budget was 0).
    pub shrunk: bool,
}

/// What [`shrink`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkResult {
    /// The smallest scenario found that still violates the oracle.
    pub scenario: Scenario,
    /// Simulation runs spent.
    pub runs: usize,
    /// Whether the scenario is smaller than the input.
    pub shrunk: bool,
}

/// Every size-reducing transformation of `s`, most aggressive first.
/// Each output is strictly "smaller" than `s` in at least one component
/// and larger in none, which (with the acceptance filter) guarantees
/// shrinking terminates even without the run budget.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |candidate: Scenario| {
        if &candidate != s {
            out.push(candidate);
        }
    };

    // Fleet size dominates everything else a fleet-class scenario
    // carries, so it shrinks first: drop the fleet layer entirely
    // (reverting to the small base grid the seed also drew), then halve
    // the node count. Faults aimed at dropped nodes are pruned; the
    // position stream draws per node in index order, so the surviving
    // prefix of the layout is bit-identical after a halving.
    if let Some(f) = s.fleet {
        let mut c = s.clone();
        c.fleet = None;
        push(c);
        if f.nodes > FLEET_MIN_NODES {
            let mut c = s.clone();
            let nodes = (f.nodes / 2).max(FLEET_MIN_NODES);
            c.fleet = Some(crate::scenario::FleetSpec { nodes, ..f });
            c.faults.retain(|fault| (fault.node as usize) < nodes);
            push(c);
        }
    }

    // Thread-equivalence reruns are the single most expensive feature a
    // scenario can carry (3 extra simulations per execution): try
    // dropping them first. (A thread_journal_equivalence violation
    // obviously survives this never.)
    if s.check_threads {
        let mut c = s.clone();
        c.check_threads = false;
        push(c);
    }

    // Same for streaming-equivalence reruns (4 extra simulations per
    // execution).
    if s.check_stream {
        let mut c = s.clone();
        c.check_stream = false;
        push(c);
    }

    // And for the fast-vs-legacy spectral front-end comparison (two
    // extra streaming engine runs per execution).
    if s.check_frontend {
        let mut c = s.clone();
        c.check_frontend = false;
        push(c);
    }

    // And for the event-driven scheduler equivalence rerun (one extra
    // simulation per execution).
    if s.check_sched {
        let mut c = s.clone();
        c.check_sched = false;
        push(c);
    }

    // And for the region-sharding equivalence rerun (four extra
    // simulations plus three serve sessions per execution).
    if s.check_shard {
        let mut c = s.clone();
        c.check_shard = false;
        push(c);
    }

    // Drop the alert-storm campaign (reverts the tight token bucket and
    // the scheduled reload script; the expanded convoy ships stay and
    // shrink through the ship transformations below).
    if s.alert_storm {
        let mut c = s.clone();
        c.alert_storm = false;
        push(c);
    }

    // Halve the run, pruning faults scheduled past the new horizon.
    if s.duration > MIN_DURATION {
        let mut c = s.clone();
        c.duration = (s.duration / 2.0).max(MIN_DURATION).ceil();
        c.faults.retain(|f| f.time < c.duration);
        push(c);
    }

    // Drop the whole fault campaign, then either half, then singles.
    if !s.faults.is_empty() {
        let mut c = s.clone();
        c.faults.clear();
        push(c);
        let mid = s.faults.len() / 2;
        if mid > 0 {
            let mut c = s.clone();
            c.faults.truncate(mid);
            push(c);
            let mut c = s.clone();
            c.faults.drain(..mid);
            push(c);
        }
        if s.faults.len() <= 8 {
            for drop in 0..s.faults.len() {
                let mut c = s.clone();
                c.faults.remove(drop);
                push(c);
            }
        }
    }

    // Fewer ships.
    if !s.ships.is_empty() {
        let mut c = s.clone();
        c.ships.clear();
        push(c);
        for drop in 0..s.ships.len() {
            let mut c = s.clone();
            c.ships.remove(drop);
            push(c);
        }
    }

    // Smaller grid. Shrinking the grid drops high-index nodes; fault
    // events aimed at them become harmless no-ops at injection time.
    // Meaningless while the fleet layer is present (fleet placement
    // ignores the grid shape); available again after the fleet drops.
    if s.rows > 2 && s.fleet.is_none() {
        let mut c = s.clone();
        c.rows -= 1;
        push(c);
    }
    if s.cols > 2 && s.fleet.is_none() {
        let mut c = s.clone();
        c.cols -= 1;
        push(c);
    }

    // Switch optional features off, one at a time.
    if s.burst_severity > 0.0 {
        let mut c = s.clone();
        c.burst_severity = 0.0;
        push(c);
    }
    if s.dead_node_fraction > 0.0 {
        let mut c = s.clone();
        c.dead_node_fraction = 0.0;
        push(c);
    }
    // The duty-cycle and free-form flips are meaningless while the
    // fleet layer is present (fleet placement ignores `free_form` and
    // forces duty cycling); they become available again once the
    // fleet-drop candidate above lands.
    if s.duty_cycle && s.fleet.is_none() {
        let mut c = s.clone();
        c.duty_cycle = false;
        push(c);
    }
    if s.free_form && s.fleet.is_none() {
        let mut c = s.clone();
        c.free_form = false;
        push(c);
    }

    // A quieter sea surface (fewer synthesized wave components).
    if s.sea_components > 16 {
        let mut c = s.clone();
        c.sea_components = (s.sea_components / 2).max(16);
        push(c);
    }

    out
}

/// Whether `scenario` still violates the named oracle. One simulation.
fn still_fails(scenario: &Scenario, sabotage: Sabotage, oracle: &str) -> bool {
    let report = execute(scenario, sabotage);
    check_all(&report).iter().any(|v| v.oracle == oracle)
}

/// Greedily minimizes `scenario` while the named oracle keeps failing,
/// spending at most `budget` simulation runs. The input is assumed to
/// already violate `oracle` (the caller just observed it); if it does
/// not, the original scenario comes back unshrunk.
pub fn shrink(
    scenario: &Scenario,
    sabotage: Sabotage,
    oracle: &str,
    budget: usize,
) -> ShrinkResult {
    let mut current = scenario.clone();
    let mut runs = 0usize;
    let mut shrunk = false;
    // Restart the candidate pass after every acceptance: earlier, more
    // aggressive transformations often become applicable again once a
    // later one lands.
    'passes: loop {
        for candidate in candidates(&current) {
            if runs >= budget {
                break 'passes;
            }
            runs += 1;
            if still_fails(&candidate, sabotage, oracle) {
                current = candidate;
                shrunk = true;
                continue 'passes;
            }
        }
        break;
    }
    ShrinkResult {
        scenario: current,
        runs,
        shrunk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size(s: &Scenario) -> (u64, usize, usize, usize, usize, usize) {
        (
            s.duration as u64,
            s.faults.len(),
            s.ships.len(),
            s.node_count(),
            s.sea_components,
            usize::from(s.check_threads)
                + usize::from(s.check_stream)
                + usize::from(s.check_frontend)
                + usize::from(s.check_sched)
                + usize::from(s.check_shard)
                + usize::from(s.alert_storm)
                + usize::from(s.duty_cycle)
                + usize::from(s.free_form)
                + usize::from(s.burst_severity > 0.0)
                + usize::from(s.dead_node_fraction > 0.0),
        )
    }

    #[test]
    fn every_candidate_is_strictly_smaller() {
        for seed in 0..32 {
            for s in [Scenario::generate(seed), Scenario::fleet(seed)] {
                let base = size(&s);
                for c in candidates(&s) {
                    let cs = size(&c);
                    assert_ne!(cs, base, "candidate identical in size to its parent");
                    assert!(
                        cs.0 <= base.0
                            && cs.1 <= base.1
                            && cs.2 <= base.2
                            && cs.3 <= base.3
                            && cs.4 <= base.4
                            && cs.5 <= base.5,
                        "candidate grew along some axis: {cs:?} vs {base:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_floors_are_respected() {
        let mut s = Scenario::generate(1);
        s.duration = MIN_DURATION;
        s.rows = 2;
        s.cols = 2;
        s.sea_components = 16;
        s.faults.clear();
        s.ships.clear();
        s.burst_severity = 0.0;
        s.dead_node_fraction = 0.0;
        s.duty_cycle = false;
        s.free_form = false;
        s.check_threads = false;
        s.check_stream = false;
        s.check_frontend = false;
        s.check_sched = false;
        s.check_shard = false;
        s.alert_storm = false;
        s.fleet = None;
        assert!(
            candidates(&s).is_empty(),
            "a floor-sized scenario admits no further shrinking"
        );
    }

    #[test]
    fn fleet_size_shrinks_first() {
        let s = Scenario::fleet(3);
        let spec = s.fleet.expect("fleet class");
        let cands = candidates(&s);
        // The two fleet candidates lead: drop the fleet layer, then
        // halve the node count (pruning faults aimed at dropped nodes).
        assert!(cands[0].fleet.is_none());
        let halved = cands[1].fleet.expect("second candidate keeps fleet");
        assert_eq!(halved.nodes, (spec.nodes / 2).max(FLEET_MIN_NODES));
        assert!(cands[1]
            .faults
            .iter()
            .all(|f| (f.node as usize) < halved.nodes));
        // No meaningless flips while the fleet layer is present: fleet
        // placement ignores `free_form` and forces duty cycling.
        assert!(cands
            .iter()
            .filter(|c| c.fleet.is_some())
            .all(|c| c.duty_cycle && c.free_form));
    }

    #[test]
    fn fleet_node_floor_is_respected() {
        let mut s = Scenario::fleet(3);
        let spec = s.fleet.as_mut().expect("fleet class");
        spec.nodes = FLEET_MIN_NODES;
        // At the floor the halving candidate disappears, but the
        // fleet-drop candidate (and the rest of the pass) remains.
        let cands = candidates(&s);
        assert!(cands[0].fleet.is_none());
        assert!(cands.iter().all(|c| c
            .fleet
            .is_none_or(|f| f.nodes == FLEET_MIN_NODES)));
    }

    #[test]
    fn zero_budget_returns_the_original() {
        let s = Scenario::generate(11);
        let result = shrink(&s, Sabotage::None, "confirmed_implies_quorum", 0);
        assert_eq!(result.scenario, s);
        assert_eq!(result.runs, 0);
        assert!(!result.shrunk);
    }
}
