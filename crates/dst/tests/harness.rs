//! End-to-end harness tests: a fuzz smoke over generated scenarios, the
//! journal-determinism contract, and the sabotage fire drill (a
//! deliberately-broken quorum must be caught by the oracles and shrunk
//! to a minimal repro).

use sid_dst::{
    check_all, execute, execute_with_threads, shrink, FailureRecord, Sabotage, Scenario,
};

#[test]
fn fuzz_smoke_zero_violations() {
    // A debug-build slice of the `just dst-smoke` range (the release
    // binary sweeps >= 200 seeds); every oracle must stay quiet.
    for seed in 1000..1008 {
        let scenario = Scenario::generate(seed);
        let report = execute(&scenario, Sabotage::None);
        let violations = check_all(&report);
        assert!(
            violations.is_empty(),
            "seed {seed} violated: {violations:?}"
        );
    }
}

#[test]
fn alert_storm_campaign_suppresses_and_reloads_correctly() {
    // Seed 1000 is a storm seed (1000 % 8 == 0): a three-ship convoy
    // against a one-token alert bucket, plus a scheduled invalid +
    // valid detection reload. The full oracle battery (including the
    // alert-suppression replay) must stay quiet, and the storm must
    // actually exercise every alert decision: emits, suppressions,
    // coalesced summaries, one applied reload and one journaled
    // rejection.
    let mut scenario = Scenario::generate(1000);
    assert!(scenario.alert_storm);
    // The equivalence reruns are covered by `fuzz_smoke_zero_violations`
    // and the release smoke; skip them here to keep the debug run cheap.
    scenario.check_threads = false;
    scenario.check_stream = false;
    let report = execute(&scenario, Sabotage::None);
    let violations = check_all(&report);
    assert!(violations.is_empty(), "storm violated: {violations:?}");
    assert_eq!(report.counts.config_reloads, 1, "valid reload applied");
    assert_eq!(report.counts.config_reload_rejections, 1, "invalid reload journaled");
    assert_eq!(report.trace.retunes_applied, 1);
    assert_eq!(report.trace.retunes_rejected, 1);
    assert!(report.counts.alerts_emitted >= 1, "counts: {:?}", report.counts);
    assert!(report.counts.alerts_suppressed >= 1, "counts: {:?}", report.counts);
    assert!(report.counts.alerts_coalesced >= 1, "counts: {:?}", report.counts);
}

#[test]
fn journal_is_deterministic_across_reruns_and_pool_sizes() {
    let scenario = Scenario::generate(1004);
    let a = execute(&scenario, Sabotage::None);
    let b = execute(&scenario, Sabotage::None);
    assert_eq!(a.journal, b.journal, "same seed, same thread count");
    assert_eq!(a.counts, b.counts);
    let wide = execute_with_threads(&scenario, Sabotage::None, 4);
    assert_eq!(a.journal, wide.journal, "journal must not depend on pool size");
    assert_eq!(a.counts, wide.counts);
    assert!(!a.journal.is_empty(), "the run recorded nothing");
}

#[test]
fn fleet_class_runs_clean_and_is_thread_deterministic() {
    // Fleet seed 3007 (also the golden seed in sid-bench): a free-form
    // coastline over the spatial-hash index with an index-stride
    // sentinel picket. The fleet is shrunk for the debug build — the
    // release `just fleet-smoke` slice runs full 200–2000-node sizes —
    // but the class behavior (free-form placement, hash index path at
    // 128 ≥ SPATIAL_HASH_THRESHOLD, forced duty cycling, the
    // `scheduler_equivalence` rerun every fleet seed carries) is
    // unchanged.
    let mut scenario = Scenario::fleet(3007);
    assert!(scenario.check_sched, "every fleet seed reruns run_events");
    scenario.fleet.as_mut().expect("fleet class").nodes = 128;
    let report = execute(&scenario, Sabotage::None);
    let violations = check_all(&report);
    assert!(violations.is_empty(), "fleet violated: {violations:?}");
    let rerun = execute_with_threads(&scenario, Sabotage::None, 4);
    assert_eq!(
        report.journal, rerun.journal,
        "fleet journal must not depend on pool size"
    );
    assert_eq!(report.counts, rerun.counts);
}

#[test]
fn sabotaged_quorum_is_caught_and_shrunk_to_a_minimal_repro() {
    // Seed 1000 is known to raise loose-quorum confirmations (harbor
    // noise alone suffices once the quorum is gutted); the generated
    // scenario is deterministic, so this stays a fixed fixture.
    let scenario = Scenario::generate(1000);
    // Fire drill: the same scenario must be clean under the nominal
    // config and violating under the gutted quorum.
    let report = execute(&scenario, Sabotage::LooseQuorum);
    let violations = check_all(&report);
    let violation = violations
        .iter()
        .find(|v| v.oracle == "confirmed_implies_quorum")
        .expect("the loose quorum must trip the quorum oracle");

    let result = shrink(&scenario, Sabotage::LooseQuorum, violation.oracle, 24);
    assert!(result.shrunk, "a generated scenario must admit shrinking");
    assert!(result.runs <= 24);
    // The repro must be no bigger than the original on every axis...
    assert!(result.scenario.duration <= scenario.duration);
    assert!(result.scenario.node_count() <= scenario.node_count());
    // ...and the *same* oracle must still fail on it.
    let replay = execute(&result.scenario, Sabotage::LooseQuorum);
    assert!(
        check_all(&replay)
            .iter()
            .any(|v| v.oracle == "confirmed_implies_quorum"),
        "the shrunk scenario no longer reproduces the violation"
    );

    // The persisted repro round-trips losslessly.
    let record = FailureRecord {
        seed: scenario.seed,
        oracle: violation.oracle.to_string(),
        detail: violation.detail.clone(),
        scenario: result.scenario.clone(),
        shrink_iterations: result.runs,
        shrunk: result.shrunk,
    };
    let json = serde_json::to_string_pretty(&record).expect("serialize");
    let back: FailureRecord = serde_json::from_str(&json).expect("parse");
    assert_eq!(back, record);
}
