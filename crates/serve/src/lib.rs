//! # sid-serve
//!
//! Long-running multi-tenant simulation service for the SID
//! reproduction (DESIGN.md §17): a [`SessionManager`] multiplexes N
//! independent tenant sessions — each a full detection pipeline with
//! its own seed, scenario, journal, and alerting edge — over one shared
//! `sid-exec` worker pool. Inside a session, [`SessionSpec::with_shards`]
//! partitions the deployment into K spatial regions that advance
//! concurrently and merge cross-shard radio deliveries back into one
//! deterministic order (`sid-net`'s lane-partitioned scheduler).
//!
//! Everything stays deterministic: a session's journal is a pure
//! function of its builder + seed + advance schedule, byte-identical at
//! any pool width, shard count, and across checkpoint/migrate/resume.
//! Per-tenant journals are namespaced with the tenant label
//! ([`sid_obs::render_namespaced_journal`]) so N sessions can share one
//! log stream and still split apart byte-exactly.
//!
//! ## Sessions, checkpoints, migration
//!
//! A [`SessionCheckpoint`] is a *replayable description*, not a state
//! dump: the session's spec plus its exact advance schedule and the
//! journal fingerprint at checkpoint time. Resuming rebuilds the
//! pipeline from the builder, replays the schedule, and verifies the
//! replayed journal fingerprint against the checkpoint before handing
//! the session back — a divergence (wrong builder, wrong binary, a
//! non-deterministic host) is caught at the integrity gate instead of
//! silently corrupting the tenant's stream. Replay is the only exact
//! migration primitive for a full pipeline: the shared detector RNG is
//! deliberately not serializable, and the journal-purity contract makes
//! replay bit-exact. Hot detector-bank state (`sid-stream`'s
//! `StreamEngine`) migrates by value through its serde-proven
//! `EngineSnapshot` instead.
//!
//! # Examples
//!
//! Multiplex two tenants over one pool, then migrate one of them:
//!
//! ```
//! use sid_serve::{SessionManager, SessionSpec};
//! # use rand::SeedableRng;
//! # use sid_core::{Pipeline, SystemConfig};
//! # use sid_ocean::{Scene, SeaState, ShipWaveModel, WaveSpectrum};
//! # fn build(seed: u64) -> impl FnOnce() -> Pipeline {
//! #     move || {
//! #         let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
//! #         let sea = SeaState::synthesize(WaveSpectrum::sheltered_harbor(), 16, &mut rng);
//! #         let scene = Scene::new(sea, ShipWaveModel::default());
//! #         Pipeline::new(scene, SystemConfig::paper_default(3, 3), seed)
//! #     }
//! # }
//! let mut mgr = SessionManager::with_threads(2);
//! let a = mgr.open(SessionSpec::new("harbor-a", 7), build(7));
//! let b = mgr.open(SessionSpec::new("harbor-b", 8).with_shards(2), build(8));
//! mgr.advance_all(20.0);
//!
//! // Each tenant carries its own deterministic journal.
//! let fp_a = mgr.session(a).unwrap().fingerprint();
//! let fp_b = mgr.session(b).unwrap().fingerprint();
//! assert_ne!(fp_a, fp_b);
//!
//! // Checkpoint tenant A, migrate it to a different worker assignment
//! // (a 1-thread manager), finish both — fingerprints must agree.
//! let ckpt = mgr.checkpoint(a).unwrap();
//! let mut other = SessionManager::with_threads(1);
//! let a2 = other.resume(&ckpt, build(7)).unwrap();
//! other.advance(a2, 20.0).unwrap();
//! mgr.advance(a, 20.0).unwrap();
//! assert_eq!(
//!     mgr.session(a).unwrap().fingerprint(),
//!     other.session(a2).unwrap().fingerprint(),
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sid_core::IntrusionDetectionSystem;
use sid_exec::Pool;
use sid_obs::{journal_fingerprint, render_namespaced_journal, Event, Obs};

/// Opaque handle to an open session within one [`SessionManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw numeric id.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// What a tenant asks for when opening a session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Tenant label: namespaces the session's journal lines and names it
    /// in reports. Tabs/newlines are sanitized at render time.
    pub tenant: String,
    /// The session's deterministic seed (informational — the builder
    /// closure is what actually consumes it).
    pub seed: u64,
    /// Spatial shards the deployment is partitioned into (1 = unsharded;
    /// see [`IntrusionDetectionSystem::with_shards`]).
    pub shards: usize,
}

impl SessionSpec {
    /// An unsharded spec.
    pub fn new(tenant: impl Into<String>, seed: u64) -> Self {
        SessionSpec {
            tenant: tenant.into(),
            seed,
            shards: 1,
        }
    }

    /// Requests a K-shard region partition for the session.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// Lifecycle state of a session (DESIGN.md §17's state machine; the
/// checkpointed and migrating states live in the [`SessionCheckpoint`]
/// value, not in the manager).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Opened (or resumed), no advance issued yet by this manager.
    Open,
    /// At least one advance has run.
    Running,
}

/// Errors from session operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No open session has this id (never issued, or already closed).
    UnknownSession(u64),
    /// A resume replay produced a different journal than the checkpoint
    /// recorded — the builder, binary, or host diverged from the
    /// original run, and the session must not continue.
    FingerprintMismatch {
        /// Tenant whose replay diverged.
        tenant: String,
        /// Fingerprint the checkpoint recorded.
        expected: u64,
        /// Fingerprint the replay produced.
        actual: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownSession(id) => write!(f, "unknown session id {id}"),
            ServeError::FingerprintMismatch {
                tenant,
                expected,
                actual,
            } => write!(
                f,
                "resume integrity gate: tenant '{tenant}' replayed to {actual:016x}, \
                 checkpoint recorded {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// A replayable session checkpoint: the migration/rebalancing unit.
///
/// Serializable end to end (plain spec + schedule + fingerprint), so it
/// can cross a process or host boundary; the pipeline itself is rebuilt
/// on the far side from the same builder and verified against
/// `fingerprint` (see [`SessionManager::resume`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// Tenant label.
    pub tenant: String,
    /// The session's seed.
    pub seed: u64,
    /// Shard count the session ran with (a resume may override it —
    /// shard count never changes the journal).
    pub shards: usize,
    /// Exact advance schedule issued so far, in seconds per call.
    /// Replaying these durations reproduces the identical tick
    /// boundaries, clock values, and journal bytes.
    pub advances: Vec<f64>,
    /// Journal events recorded at checkpoint time.
    pub events: usize,
    /// Journal fingerprint at checkpoint time (the integrity gate).
    pub fingerprint: u64,
}

/// Final (or in-flight) per-session summary, serializable for bench
/// reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Tenant label.
    pub tenant: String,
    /// Session seed.
    pub seed: u64,
    /// Shard count.
    pub shards: usize,
    /// Deployed node count.
    pub nodes: usize,
    /// Simulation ticks advanced.
    pub ticks: u64,
    /// Simulation seconds covered.
    pub sim_seconds: f64,
    /// Journal events recorded.
    pub events: usize,
    /// Journal fingerprint, hex (canonical bytes, namespace-independent).
    pub fingerprint: String,
}

/// One tenant's running pipeline plus its journal and advance history.
pub struct Session {
    spec: SessionSpec,
    pipeline: IntrusionDetectionSystem,
    obs: Obs,
    advances: Vec<f64>,
    ticks: u64,
    state: SessionState,
}

impl Session {
    /// Tenant label.
    pub fn tenant(&self) -> &str {
        &self.spec.tenant
    }

    /// The session's seed.
    pub fn seed(&self) -> u64 {
        self.spec.seed
    }

    /// Shard count the session runs with.
    pub fn shards(&self) -> usize {
        self.spec.shards
    }

    /// Lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Total simulation ticks advanced.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The journal so far, in canonical event form.
    pub fn events(&self) -> Vec<Event> {
        self.obs.events().expect("session journals are in-memory")
    }

    /// Journal fingerprint of the canonical bytes (namespace-free): the
    /// number two runs of this tenant must agree on.
    pub fn fingerprint(&self) -> u64 {
        journal_fingerprint(&self.events())
    }

    /// The journal rendered with the tenant-label namespace prefix, one
    /// event per line — safe to interleave with other tenants' output.
    pub fn journal(&self) -> String {
        render_namespaced_journal(&self.spec.tenant, &self.events())
    }

    /// The underlying pipeline (read-only; mutating it outside
    /// [`SessionManager::advance`] would desynchronize the checkpoint
    /// replay schedule).
    pub fn pipeline(&self) -> &IntrusionDetectionSystem {
        &self.pipeline
    }

    /// Current summary.
    pub fn report(&self) -> SessionReport {
        let events = self.events();
        SessionReport {
            tenant: self.spec.tenant.clone(),
            seed: self.spec.seed,
            shards: self.spec.shards,
            nodes: self.pipeline.node_count(),
            ticks: self.ticks,
            sim_seconds: self.pipeline.now(),
            events: events.len(),
            fingerprint: format!("{:016x}", journal_fingerprint(&events)),
        }
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("tenant", &self.spec.tenant)
            .field("seed", &self.spec.seed)
            .field("shards", &self.spec.shards)
            .field("ticks", &self.ticks)
            .field("state", &self.state)
            .finish()
    }
}

/// The multiplexer: owns N tenant sessions and drives them over one
/// shared worker pool. See the [crate docs](self) for the full
/// lifecycle example.
pub struct SessionManager {
    pool: Arc<Pool>,
    sessions: BTreeMap<u64, Session>,
    next: u64,
}

impl SessionManager {
    /// A manager driving its sessions on `pool`.
    pub fn new(pool: Arc<Pool>) -> Self {
        SessionManager {
            pool,
            sessions: BTreeMap::new(),
            next: 0,
        }
    }

    /// Convenience: a manager with its own `threads`-wide pool.
    pub fn with_threads(threads: usize) -> Self {
        Self::new(Arc::new(Pool::new(threads)))
    }

    /// The shared worker pool sessions run on.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Ids of every open session, ascending.
    pub fn ids(&self) -> Vec<SessionId> {
        self.sessions.keys().map(|&k| SessionId(k)).collect()
    }

    /// A session by id.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(&id.0)
    }

    /// Opens a session: `build` constructs the tenant's pipeline
    /// (scene + config + seed — *without* attaching obs or a pool), and
    /// the manager wires in its own in-memory journal, the shared
    /// worker pool, and the spec's shard partition. The same builder
    /// must be supplied again on [`resume`](Self::resume).
    pub fn open(
        &mut self,
        spec: SessionSpec,
        build: impl FnOnce() -> IntrusionDetectionSystem,
    ) -> SessionId {
        let obs = Obs::in_memory();
        let pipeline = build()
            .with_obs(obs.clone())
            .with_pool(self.pool.clone())
            .with_shards(spec.shards);
        let id = self.next;
        self.next += 1;
        self.sessions.insert(
            id,
            Session {
                spec,
                pipeline,
                obs,
                advances: Vec::new(),
                ticks: 0,
                state: SessionState::Open,
            },
        );
        SessionId(id)
    }

    /// Advances one session by `seconds` of simulation time on the
    /// event-driven driver, recording the duration in the session's
    /// replay schedule. Returns the ticks covered.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] when `id` is not open.
    pub fn advance(&mut self, id: SessionId, seconds: f64) -> Result<u64, ServeError> {
        let session = self
            .sessions
            .get_mut(&id.0)
            .ok_or(ServeError::UnknownSession(id.0))?;
        let ticks = session.pipeline.tick_count(seconds);
        session.pipeline.run_events(seconds);
        session.advances.push(seconds);
        session.ticks += ticks;
        session.state = SessionState::Running;
        Ok(ticks)
    }

    /// Advances every open session by `seconds`, in ascending session-id
    /// order (deterministic round-robin). Returns total ticks covered.
    pub fn advance_all(&mut self, seconds: f64) -> u64 {
        let ids = self.ids();
        let mut total = 0;
        for id in ids {
            total += self.advance(id, seconds).expect("id listed as open");
        }
        total
    }

    /// Captures a replayable checkpoint of a session (the session keeps
    /// running here; the checkpoint is a value that can migrate).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] when `id` is not open.
    pub fn checkpoint(&self, id: SessionId) -> Result<SessionCheckpoint, ServeError> {
        let session = self.session(id).ok_or(ServeError::UnknownSession(id.0))?;
        let events = session.events();
        Ok(SessionCheckpoint {
            tenant: session.spec.tenant.clone(),
            seed: session.spec.seed,
            shards: session.spec.shards,
            advances: session.advances.clone(),
            events: events.len(),
            fingerprint: journal_fingerprint(&events),
        })
    }

    /// Resumes a checkpointed session on *this* manager (possibly a
    /// different worker pool — that's the migration): rebuilds the
    /// pipeline with `build`, replays the checkpoint's advance schedule,
    /// and verifies the replayed journal fingerprint before returning
    /// the new id.
    ///
    /// # Errors
    ///
    /// [`ServeError::FingerprintMismatch`] when the replay diverges from
    /// what the checkpoint recorded; the session is not installed.
    pub fn resume(
        &mut self,
        checkpoint: &SessionCheckpoint,
        build: impl FnOnce() -> IntrusionDetectionSystem,
    ) -> Result<SessionId, ServeError> {
        self.resume_with_shards(checkpoint, checkpoint.shards, build)
    }

    /// [`resume`](Self::resume) with a different shard partition — a
    /// rebalancing migration. Journals are shard-count-invariant, so the
    /// integrity gate still must pass bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`ServeError::FingerprintMismatch`] when the replay diverges.
    pub fn resume_with_shards(
        &mut self,
        checkpoint: &SessionCheckpoint,
        shards: usize,
        build: impl FnOnce() -> IntrusionDetectionSystem,
    ) -> Result<SessionId, ServeError> {
        let obs = Obs::in_memory();
        let mut pipeline = build()
            .with_obs(obs.clone())
            .with_pool(self.pool.clone())
            .with_shards(shards);
        let mut ticks = 0;
        for &seconds in &checkpoint.advances {
            ticks += pipeline.tick_count(seconds);
            pipeline.run_events(seconds);
        }
        let events = obs.events().expect("in-memory");
        let actual = journal_fingerprint(&events);
        if actual != checkpoint.fingerprint {
            return Err(ServeError::FingerprintMismatch {
                tenant: checkpoint.tenant.clone(),
                expected: checkpoint.fingerprint,
                actual,
            });
        }
        let id = self.next;
        self.next += 1;
        self.sessions.insert(
            id,
            Session {
                spec: SessionSpec {
                    tenant: checkpoint.tenant.clone(),
                    seed: checkpoint.seed,
                    shards: shards.max(1),
                },
                pipeline,
                obs,
                advances: checkpoint.advances.clone(),
                ticks,
                state: SessionState::Open,
            },
        );
        Ok(SessionId(id))
    }

    /// Closes a session, removing it and returning its final report.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] when `id` is not open.
    pub fn close(&mut self, id: SessionId) -> Result<SessionReport, ServeError> {
        let session = self
            .sessions
            .remove(&id.0)
            .ok_or(ServeError::UnknownSession(id.0))?;
        Ok(session.report())
    }
}

impl fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionManager")
            .field("sessions", &self.sessions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sid_core::{Pipeline, SystemConfig};
    use sid_ocean::{Angle, Knots, Scene, SeaState, Ship, ShipWaveModel, Vec2, WaveSpectrum};

    fn build(seed: u64) -> impl FnOnce() -> Pipeline {
        move || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let sea = SeaState::synthesize(WaveSpectrum::sheltered_harbor(), 32, &mut rng);
            let mut scene = Scene::new(sea, ShipWaveModel::default());
            scene.add_ship(Ship::new(
                Vec2::new(37.0, -120.0),
                Angle::from_degrees(90.0),
                Knots::new(12.0),
            ));
            Pipeline::new(scene, SystemConfig::paper_default(4, 4), seed)
        }
    }

    #[test]
    fn sessions_are_isolated_and_deterministic() {
        let run = |threads: usize| {
            let mut mgr = SessionManager::with_threads(threads);
            let ids: Vec<SessionId> = (0..3)
                .map(|i| {
                    mgr.open(
                        SessionSpec::new(format!("tenant-{i}"), 100 + i).with_shards(i as usize + 1),
                        build(100 + i),
                    )
                })
                .collect();
            for _ in 0..4 {
                mgr.advance_all(30.0);
            }
            ids.iter()
                .map(|&id| mgr.session(id).unwrap().fingerprint())
                .collect::<Vec<u64>>()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a, b, "fingerprints must not depend on pool width");
        assert_eq!(a.len(), 3);
        assert!(a.windows(2).all(|w| w[0] != w[1]), "tenants must differ");
    }

    #[test]
    fn shard_count_does_not_change_a_session_journal() {
        let fp = |shards: usize| {
            let mut mgr = SessionManager::with_threads(2);
            let id = mgr.open(SessionSpec::new("t", 9).with_shards(shards), build(9));
            mgr.advance(id, 120.0).unwrap();
            mgr.session(id).unwrap().fingerprint()
        };
        let reference = fp(1);
        assert_eq!(fp(2), reference);
        assert_eq!(fp(4), reference);
    }

    #[test]
    fn checkpoint_migrate_resume_reproduces_the_journal() {
        let mut mgr = SessionManager::with_threads(4);
        let id = mgr.open(SessionSpec::new("migrant", 11).with_shards(2), build(11));
        mgr.advance(id, 60.0).unwrap();
        let ckpt = mgr.checkpoint(id).unwrap();
        // Serde round-trip: the checkpoint is the migration wire format.
        let json = serde_json::to_string(&ckpt).unwrap();
        let ckpt: SessionCheckpoint = serde_json::from_str(&json).unwrap();

        // Migrate onto a different pool AND a different shard layout.
        let mut other = SessionManager::with_threads(1);
        let id2 = other.resume_with_shards(&ckpt, 4, build(11)).unwrap();
        assert_eq!(other.session(id2).unwrap().ticks(), mgr.session(id).unwrap().ticks());

        mgr.advance(id, 60.0).unwrap();
        other.advance(id2, 60.0).unwrap();
        let a = mgr.close(id).unwrap();
        let b = other.close(id2).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn resume_integrity_gate_rejects_a_diverged_builder() {
        let mut mgr = SessionManager::with_threads(2);
        let id = mgr.open(SessionSpec::new("t", 5), build(5));
        mgr.advance(id, 60.0).unwrap();
        let ckpt = mgr.checkpoint(id).unwrap();
        let mut other = SessionManager::with_threads(2);
        // Wrong seed: the replay diverges and the gate must hold.
        match other.resume(&ckpt, build(6)) {
            Err(ServeError::FingerprintMismatch { tenant, .. }) => assert_eq!(tenant, "t"),
            other => panic!("integrity gate failed: {other:?}"),
        }
        assert!(other.is_empty(), "diverged session must not be installed");
    }

    #[test]
    fn namespaced_journals_interleave_and_split() {
        let mut mgr = SessionManager::with_threads(2);
        let a = mgr.open(SessionSpec::new("alpha", 21), build(21));
        let b = mgr.open(SessionSpec::new("beta", 22), build(22));
        mgr.advance_all(60.0);
        let merged = format!(
            "{}\n{}",
            mgr.session(a).unwrap().journal(),
            mgr.session(b).unwrap().journal()
        );
        let alpha_lines = merged.lines().filter(|l| l.starts_with("alpha\t")).count();
        assert_eq!(alpha_lines, mgr.session(a).unwrap().events().len());
        assert!(merged.lines().all(|l| l.contains('\t')));
    }

    #[test]
    fn unknown_session_errors() {
        let mut mgr = SessionManager::with_threads(1);
        let id = mgr.open(SessionSpec::new("t", 1), build(1));
        mgr.close(id).unwrap();
        assert_eq!(
            mgr.advance(id, 1.0),
            Err(ServeError::UnknownSession(id.value()))
        );
        assert!(mgr.checkpoint(id).is_err());
        assert!(mgr.close(id).is_err());
        assert_eq!(mgr.len(), 0);
    }
}
