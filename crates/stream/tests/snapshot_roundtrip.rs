//! Snapshot fidelity under fuzzing: for arbitrary ingest schedules, a
//! mid-run `snapshot` → serde round-trip → `restore` → continue must be
//! bitwise-equal to the engine that never stopped — same outputs, same
//! backpressure, same peak-resident high-water mark. This is the
//! property `sid-serve` relies on when it migrates a session's detector
//! bank to another worker.

use std::f64::consts::PI;

use proptest::prelude::*;

use sid_core::{ClassifierConfig, DetectorConfig};
use sid_exec::Pool;
use sid_stream::{StreamConfig, StreamEngine, StreamOutput};

fn small_config(ring_capacity: usize) -> StreamConfig {
    let mut classifier = ClassifierConfig::paper_default();
    classifier.stft.frame_len = 256;
    classifier.stft.hop = 128;
    StreamConfig {
        detector: DetectorConfig::paper_default(),
        classifier,
        ring_capacity,
    }
}

/// Synthetic z-axis signal: calm sea plus a ship-band burst whose phase
/// differs per node, deterministic in `(node, sample_index)`.
fn z(node: usize, i: u64) -> f64 {
    let t = i as f64 / 50.0;
    let phase = node as f64 * 0.7;
    let calm = 1024.0 + 15.0 * (2.0 * PI * 0.3 * t + phase).sin();
    let burst = 40.0 * (-0.5 * ((t - 20.0) / 4.0f64).powi(2)).exp() * (2.0 * PI * 0.4 * t).sin();
    calm + burst
}

/// Drives `engine` through `chunks` pushes per node with a pump after
/// each round, collecting every output. Returns the outputs and the
/// per-node accepted-sample counts (backpressure trace).
fn drive(
    engine: &mut StreamEngine,
    pool: &Pool,
    cursor: &mut [u64],
    rounds: &[usize],
) -> (Vec<StreamOutput>, Vec<u64>) {
    let nodes = engine.node_count();
    let mut outputs = Vec::new();
    let mut accepted = vec![0u64; nodes];
    for &chunk in rounds {
        for node in 0..nodes {
            let samples: Vec<f64> =
                (0..chunk).map(|k| z(node, cursor[node] + k as u64)).collect();
            let took = engine.push_chunk(node, &samples);
            cursor[node] += took as u64;
            accepted[node] += took as u64;
        }
        outputs.extend(engine.pump(pool));
    }
    (outputs, accepted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_restore_advance_is_bitwise_equal(
        nodes in 1usize..4,
        ring_capacity in 200usize..600,
        pre_rounds in proptest::collection::vec(1usize..180, 1..6),
        post_rounds in proptest::collection::vec(1usize..180, 1..6),
    ) {
        let config = small_config(ring_capacity);
        let pool = Pool::new(2);

        // Uninterrupted reference run.
        let mut continuous = StreamEngine::new(config, nodes).expect("config");
        let mut cursor = vec![0u64; nodes];
        let (mut ref_out, ref_pre_accepted) =
            drive(&mut continuous, &pool, &mut cursor, &pre_rounds);
        let (tail, ref_post_accepted) =
            drive(&mut continuous, &pool, &mut cursor, &post_rounds);
        ref_out.extend(tail);

        // Interrupted run: same prefix, then snapshot → JSON → restore.
        let mut before = StreamEngine::new(config, nodes).expect("config");
        let mut cursor2 = vec![0u64; nodes];
        let (mut out, pre_accepted) = drive(&mut before, &pool, &mut cursor2, &pre_rounds);
        prop_assert_eq!(&pre_accepted, &ref_pre_accepted);
        let json = serde_json::to_string(&before.snapshot()).expect("serialize");
        let snapshot = serde_json::from_str(&json).expect("deserialize");
        let mut resumed = StreamEngine::restore(config, &snapshot).expect("restore");
        // Nothing silently defaulted: the migrated engine carries the
        // high-water mark forward instead of restarting it.
        prop_assert_eq!(
            resumed.peak_resident_samples(),
            before.peak_resident_samples()
        );
        let (tail, post_accepted) = drive(&mut resumed, &pool, &mut cursor2, &post_rounds);
        out.extend(tail);

        prop_assert_eq!(&post_accepted, &ref_post_accepted);
        prop_assert_eq!(out, ref_out);
        prop_assert_eq!(
            resumed.peak_resident_samples(),
            continuous.peak_resident_samples()
        );
    }
}
