//! Streaming-vs-offline equivalence: the `PipelineStream` driver must
//! produce byte-identical journals and traces to `Pipeline::run` for
//! every chunk size and pool width. (The DST harness re-proves this on
//! hundreds of fuzzed scenarios; these are the direct unit-level
//! checks.)

use std::sync::Arc;

use rand::SeedableRng;

use sid_core::{Pipeline, SystemConfig};
use sid_obs::{render_journal, Obs};
use sid_ocean::{Angle, Knots, Scene, SeaState, Ship, ShipWaveModel, Vec2, WaveSpectrum};
use sid_stream::{StreamDriverConfig, StreamExt};

/// A ship passage over a 4×4 grid with a journal attached.
fn build(threads: usize) -> (Pipeline, Obs) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let sea = SeaState::synthesize(WaveSpectrum::sheltered_harbor(), 64, &mut rng);
    let mut scene = Scene::new(sea, ShipWaveModel::default());
    scene.add_ship(Ship::new(
        Vec2::new(37.0, -120.0),
        Angle::from_degrees(90.0),
        Knots::new(12.0),
    ));
    let obs = Obs::in_memory();
    let pipeline = Pipeline::new(scene, SystemConfig::paper_default(4, 4), 9)
        .with_obs(obs.clone())
        .with_pool(Arc::new(sid_exec::Pool::new(threads)));
    (pipeline, obs)
}

fn offline_journal(threads: usize, duration: f64) -> (String, sid_core::SystemTrace, u64) {
    let (mut pipeline, obs) = build(threads);
    pipeline.run(duration);
    let events = obs.events().expect("in-memory recorder keeps events");
    (
        render_journal(&events),
        pipeline.trace().clone(),
        pipeline.now().to_bits(),
    )
}

fn streamed_journal(
    threads: usize,
    duration: f64,
    config: StreamDriverConfig,
) -> (String, sid_core::SystemTrace, u64, usize) {
    let (pipeline, obs) = build(threads);
    let mut stream = pipeline.stream_with(config);
    stream.run(duration);
    let events = obs.events().expect("in-memory recorder keeps events");
    let pipeline = stream.into_inner();
    let peak = config.capacity_ticks * pipeline.node_count();
    (
        render_journal(&events),
        pipeline.trace().clone(),
        pipeline.now().to_bits(),
        peak,
    )
}

#[test]
fn streamed_matches_offline_across_chunk_sizes_and_threads() {
    let duration = 30.0;
    let (journal, trace, now) = offline_journal(1, duration);
    assert!(
        journal.contains("NodeReportEmitted") || !journal.is_empty(),
        "the passage should produce events"
    );
    for threads in [1, 4] {
        for chunk in [1, 7, 32] {
            let cfg = StreamDriverConfig::with_chunk(chunk);
            let (s_journal, s_trace, s_now, _) = streamed_journal(threads, duration, cfg);
            assert_eq!(
                s_journal, journal,
                "journal diverged at threads={threads} chunk={chunk}"
            );
            assert_eq!(s_trace, trace, "trace diverged at threads={threads} chunk={chunk}");
            assert_eq!(s_now, now, "clock diverged at threads={threads} chunk={chunk}");
        }
    }
}

#[test]
fn offline_at_many_threads_matches_streamed_baseline() {
    // Cross-check the other diagonal: streamed single-thread baseline
    // vs offline multi-thread runs.
    let duration = 12.0;
    let (s_journal, ..) = streamed_journal(1, duration, StreamDriverConfig::default());
    for threads in [2, 8] {
        let (journal, ..) = offline_journal(threads, duration);
        assert_eq!(journal, s_journal, "offline threads={threads} diverged");
    }
}

#[test]
fn peak_resident_memory_is_bounded_by_the_rings() {
    let cfg = StreamDriverConfig::with_chunk(16);
    let (pipeline, _obs) = build(1);
    let bound = cfg.capacity_ticks * pipeline.node_count();
    let mut stream = pipeline.stream_with(cfg);
    stream.run(5.0);
    assert!(stream.peak_resident_samples() > 0);
    assert!(
        stream.peak_resident_samples() <= bound,
        "peak {} exceeds ring bound {bound}",
        stream.peak_resident_samples()
    );
}

#[test]
fn interleaving_run_calls_preserves_equivalence() {
    // Driving the stream in several bursts (with leftover buffered
    // ticks between bursts) is still equivalent to one offline run.
    let (journal, trace, _) = offline_journal(1, 20.0);
    let (pipeline, obs) = build(1);
    let mut stream = pipeline.stream_with(StreamDriverConfig::with_chunk(13));
    for _ in 0..4 {
        stream.run(5.0);
    }
    let events = obs.events().expect("in-memory recorder keeps events");
    assert_eq!(render_journal(&events), journal);
    assert_eq!(stream.pipeline().trace(), &trace);
}
