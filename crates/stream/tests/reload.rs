//! Hot-reload behavior through the streaming seam: retunes requested on
//! a live stream apply (or are rejected, journaled, never panic) at the
//! next tick boundary, the streamed journal stays byte-identical to the
//! offline loop under scheduled reloads, and the alerting edge snapshots
//! and restores mid-run without perturbing subsequent output.

use std::sync::Arc;

use rand::SeedableRng;

use sid_core::{DetectionRetune, Pipeline, SystemConfig};
use sid_obs::{render_journal, Obs};
use sid_ocean::{Angle, Knots, Scene, SeaState, Ship, ShipWaveModel, Vec2, WaveSpectrum};
use sid_stream::{StreamDriverConfig, StreamExt};

/// A ship passage over a 4×4 grid with a journal attached.
fn build(threads: usize) -> (Pipeline, Obs) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let sea = SeaState::synthesize(WaveSpectrum::sheltered_harbor(), 64, &mut rng);
    let mut scene = Scene::new(sea, ShipWaveModel::default());
    scene.add_ship(Ship::new(
        Vec2::new(37.0, -120.0),
        Angle::from_degrees(90.0),
        Knots::new(12.0),
    ));
    let obs = Obs::in_memory();
    let pipeline = Pipeline::new(scene, SystemConfig::paper_default(4, 4), 9)
        .with_obs(obs.clone())
        .with_pool(Arc::new(sid_exec::Pool::new(threads)));
    (pipeline, obs)
}

fn invalid_retune() -> DetectionRetune {
    DetectionRetune {
        af_threshold: Some(42.0), // af_threshold must lie in (0, 1]
        ..DetectionRetune::default()
    }
}

fn valid_retune() -> DetectionRetune {
    DetectionRetune {
        af_threshold: Some(0.7),
        m: Some(2.25),
        ..DetectionRetune::default()
    }
}

#[test]
fn invalid_reload_mid_stream_is_rejected_and_the_stream_keeps_running() {
    let (pipeline, obs) = build(2);
    let mut stream = pipeline.stream_with(StreamDriverConfig::with_chunk(7));
    stream.run(10.0);

    // Mid-storm: request an invalid reload on the live stream. It must
    // be journaled as a rejection at the next tick boundary, not panic,
    // and the stream must keep producing ticks afterwards.
    stream.request_retune(invalid_retune());
    let before = stream.pipeline().now();
    stream.run(10.0);
    assert!(stream.pipeline().now() > before, "stream kept running");

    let trace = stream.pipeline().trace();
    assert_eq!(trace.retunes_rejected, 1, "rejection counted in trace");
    assert_eq!(trace.retunes_applied, 0);
    assert!(stream.pipeline().pending_retunes().is_empty());

    let journal = render_journal(&obs.events().expect("in-memory recorder"));
    assert!(
        journal.contains("ConfigReloadRejected"),
        "rejection journaled: {journal}"
    );
    assert!(
        journal.contains("af_threshold must lie in (0, 1]"),
        "rejection carries the validation reason"
    );
    assert!(!journal.contains("ConfigReloaded {"));
}

#[test]
fn streamed_reloads_match_the_offline_journal_byte_for_byte() {
    // Schedule the same invalid + valid reload script on an offline
    // pipeline and on streamed drivers at several chunk/thread shapes:
    // journals, traces and clocks must stay byte-identical.
    let duration = 30.0;
    let schedule = |p: &mut Pipeline| {
        p.schedule_retune(9.0, invalid_retune());
        p.schedule_retune(15.0, valid_retune());
    };

    let (mut offline, obs) = build(1);
    schedule(&mut offline);
    offline.run(duration);
    let journal = render_journal(&obs.events().expect("in-memory recorder"));
    assert!(journal.contains("ConfigReloadRejected"));
    assert!(journal.contains("ConfigReloaded"));
    let trace = offline.trace().clone();
    assert_eq!(trace.retunes_applied, 1);
    assert_eq!(trace.retunes_rejected, 1);
    let now = offline.now().to_bits();

    for threads in [1, 4] {
        for chunk in [1, 13, 32] {
            let (pipeline, obs) = build(threads);
            let mut stream = pipeline.stream_with(StreamDriverConfig::with_chunk(chunk));
            stream.schedule_retune(9.0, invalid_retune());
            stream.schedule_retune(15.0, valid_retune());
            stream.run(duration);
            let s_journal = render_journal(&obs.events().expect("in-memory recorder"));
            assert_eq!(
                s_journal, journal,
                "journal diverged at threads={threads} chunk={chunk}"
            );
            assert_eq!(stream.pipeline().trace(), &trace);
            assert_eq!(stream.pipeline().now().to_bits(), now);
        }
    }
}

#[test]
fn alert_edge_snapshot_restores_and_continues_identically() {
    // Snapshot the alerting edge mid-run, serde round-trip it, restore
    // it into a second stream paused at the same point, and check both
    // finish with identical alert state.
    let duration = 30.0;
    let (pipeline_a, _obs_a) = build(1);
    let (pipeline_b, _obs_b) = build(1);
    let mut a = pipeline_a.stream_with(StreamDriverConfig::with_chunk(8));
    let mut b = pipeline_b.stream_with(StreamDriverConfig::with_chunk(8));
    a.run(duration / 2.0);
    b.run(duration / 2.0);

    let snapshot = a.pipeline().alert_edge().clone();
    let json = serde_json::to_string(&snapshot).expect("alert edge serializes");
    let restored: sid_alert::AlertEdge = serde_json::from_str(&json).expect("round-trips");
    assert_eq!(restored, snapshot, "serde round-trip is lossless");
    b.pipeline_mut().set_alert_edge(restored);

    a.run(duration / 2.0);
    b.run(duration / 2.0);
    assert_eq!(
        a.pipeline().alert_edge(),
        b.pipeline().alert_edge(),
        "restored edge continues identically"
    );
    assert_eq!(a.pipeline().trace(), b.pipeline().trace());
}
