//! The streaming pipeline driver: `Pipeline::stream()`.
//!
//! [`PipelineStream`] drives a [`sid_core::Pipeline`] through the same
//! per-tick seam as the offline loop ([`Pipeline::begin_tick`] →
//! [`Pipeline::finish_tick`]) but sources Phase A from bounded per-node
//! ring buffers that are refilled in chunks: every `chunk_ticks` ticks,
//! the worker pool synthesizes the next block of environment samples
//! for all nodes ahead of time and pushes it into the rings.
//!
//! This works because Phase A is *pure in time* — a node senses through
//! its immutable buoy model ([`Pipeline::sense_at`]), so samples for
//! future ticks are computable before any of the intervening mutable
//! work happens. All RNG consumption, detector state and journal
//! writes stay on the sequential per-tick path, which is why streamed
//! execution is **journal-byte-identical** to [`Pipeline::run`] for
//! every chunk size, ring capacity and pool width (see DESIGN.md §12;
//! enforced by the `stream_journal_equivalence` DST oracle).

use std::sync::Arc;

use sid_core::Pipeline;
use sid_exec::Pool;
use sid_sensor::EnvSample;

use crate::ring::RingBuffer;

/// Streaming driver parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamDriverConfig {
    /// Ticks of environment data synthesized per refill (the batch the
    /// pool parallelizes over).
    pub chunk_ticks: usize,
    /// Per-node ring capacity in ticks — the hard bound on resident
    /// window memory. Must be at least `chunk_ticks`.
    pub capacity_ticks: usize,
}

impl Default for StreamDriverConfig {
    /// 32-tick (0.64 s at 50 Hz) chunks in 64-tick rings.
    fn default() -> Self {
        StreamDriverConfig {
            chunk_ticks: 32,
            capacity_ticks: 64,
        }
    }
}

impl StreamDriverConfig {
    /// A config with `chunk_ticks = chunk` and double that capacity.
    pub fn with_chunk(chunk: usize) -> Self {
        StreamDriverConfig {
            chunk_ticks: chunk,
            capacity_ticks: 2 * chunk,
        }
    }
}

/// A pipeline being driven tick-by-tick from bounded ring buffers.
/// Built by [`StreamExt::stream`] / [`StreamExt::stream_with`].
pub struct PipelineStream {
    pipeline: Pipeline,
    config: StreamDriverConfig,
    pool: Arc<Pool>,
    /// One environment-sample ring per node; all rings always hold the
    /// same number of ticks.
    rings: Vec<RingBuffer<EnvSample>>,
    /// Mirror of the pipeline clock advanced to the last synthesized
    /// tick. Accumulated with the *same* `+= dt` operation the pipeline
    /// applies, so pre-computed times are bit-identical to the times
    /// the ticks later run at.
    synth_now: f64,
    /// Ticks currently buffered in every ring.
    buffered_ticks: usize,
    sampling: Vec<usize>,
    envs: Vec<EnvSample>,
    peak_resident: usize,
}

impl PipelineStream {
    fn new(pipeline: Pipeline, config: StreamDriverConfig) -> Self {
        assert!(config.chunk_ticks >= 1, "chunk_ticks must be at least 1");
        assert!(
            config.capacity_ticks >= config.chunk_ticks,
            "ring capacity {} cannot hold a {}-tick chunk",
            config.capacity_ticks,
            config.chunk_ticks
        );
        let nodes = pipeline.node_count();
        let pool = Arc::clone(pipeline.pool());
        let synth_now = pipeline.now();
        PipelineStream {
            rings: (0..nodes)
                .map(|_| RingBuffer::with_capacity(config.capacity_ticks))
                .collect(),
            sampling: Vec::with_capacity(nodes),
            envs: Vec::with_capacity(nodes),
            pipeline,
            config,
            pool,
            synth_now,
            buffered_ticks: 0,
            peak_resident: 0,
        }
    }

    /// Synthesizes the next chunk of environment samples for every node
    /// on the pool and pushes it into the rings.
    fn refill(&mut self) {
        let free = self.config.capacity_ticks - self.buffered_ticks;
        let chunk = self.config.chunk_ticks.min(free);
        if chunk == 0 {
            return;
        }
        let dt = self.pipeline.tick_dt();
        // Replicate the pipeline's own `now += dt` accumulation: the
        // same f64 additions in the same order give bitwise-equal tick
        // times, which is what the equivalence guarantee rests on.
        let mut t = self.synth_now;
        let times: Vec<f64> = (0..chunk)
            .map(|_| {
                t += dt;
                t
            })
            .collect();
        self.synth_now = t;
        let node_idx: Vec<usize> = (0..self.rings.len()).collect();
        let pipeline = &self.pipeline;
        let blocks: Vec<Vec<EnvSample>> = self.pool.par_map(&node_idx, |&idx| {
            times.iter().map(|&t| pipeline.sense_at(idx, t)).collect()
        });
        for (ring, block) in self.rings.iter_mut().zip(blocks) {
            for env in block {
                let pushed = ring.push(env);
                debug_assert!(pushed.is_ok(), "refill bounded by free capacity");
            }
        }
        self.buffered_ticks += chunk;
        let resident = self.buffered_ticks * self.rings.len();
        self.peak_resident = self.peak_resident.max(resident);
    }

    /// Advances the pipeline by exactly one tick, refilling the rings
    /// first when they are dry.
    pub fn step(&mut self) {
        if self.buffered_ticks == 0 {
            self.refill();
        }
        self.pipeline.begin_tick(&mut self.sampling);
        // Pop this tick's sample from *every* ring (occupancy stays
        // uniform); hand the sampling subset to Phase B in node order.
        self.envs.clear();
        let mut next = self.sampling.iter().copied().peekable();
        for (idx, ring) in self.rings.iter_mut().enumerate() {
            let env = ring.pop().expect("rings refilled before stepping");
            if next.peek() == Some(&idx) {
                next.next();
                self.envs.push(env);
            }
        }
        self.buffered_ticks -= 1;
        self.pipeline.finish_tick(&self.sampling, &self.envs);
    }

    /// Streams `duration` simulated seconds — the drop-in equivalent of
    /// [`Pipeline::run`], journal-byte-identical to it.
    pub fn run(&mut self, duration: f64) {
        // The shared tick-count rule (`Pipeline::tick_count`) keeps the
        // streamed clock bit-identical to the offline loop even for
        // durations that are not exact multiples of the tick.
        let steps = self.pipeline.tick_count(duration);
        for _ in 0..steps {
            self.step();
        }
    }

    /// The pipeline under the driver.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Mutable access to the pipeline under the driver, e.g. for
    /// snapshot-restoring the alerting edge. Phase A pre-computation
    /// only depends on the immutable scene and buoy models, so mutable
    /// detection-side access cannot invalidate buffered samples.
    pub fn pipeline_mut(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    /// Requests a detection hot reload at the next tick boundary — the
    /// live-stream reload seam. Validation (and a journaled rejection on
    /// failure) happens when the tick opens; the stream keeps running
    /// either way. Buffered environment samples stay valid because
    /// retunes never touch the sensing side.
    pub fn request_retune(&mut self, retune: sid_core::DetectionRetune) {
        self.pipeline.request_retune(retune);
    }

    /// Schedules a detection hot reload for a future simulated time
    /// (scripted variant of [`Self::request_retune`]).
    pub fn schedule_retune(&mut self, at: f64, retune: sid_core::DetectionRetune) {
        self.pipeline.schedule_retune(at, retune);
    }

    /// The driver configuration.
    pub fn config(&self) -> StreamDriverConfig {
        self.config
    }

    /// Ticks currently resident in every ring.
    pub fn buffered_ticks(&self) -> usize {
        self.buffered_ticks
    }

    /// Peak resident window memory, in buffered environment samples
    /// (ticks × nodes). Bounded by `capacity_ticks × node_count` by
    /// construction.
    pub fn peak_resident_samples(&self) -> usize {
        self.peak_resident
    }

    /// Peak resident window memory in bytes.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident * std::mem::size_of::<EnvSample>()
    }

    /// Releases the pipeline (e.g. to inspect its trace or tracker).
    pub fn into_inner(self) -> Pipeline {
        self.pipeline
    }
}

/// Streaming entry points on [`Pipeline`]: `pipeline.stream()` is the
/// online driver, `pipeline.run(..)` the offline loop — same journal
/// either way.
///
/// ```
/// use rand::SeedableRng;
/// use sid_core::{Pipeline, SystemConfig};
/// use sid_ocean::{Scene, SeaState, ShipWaveModel, WaveSpectrum};
/// use sid_stream::StreamExt;
///
/// let make = || {
///     let mut rng = rand::rngs::StdRng::seed_from_u64(3);
///     let sea = SeaState::synthesize(WaveSpectrum::calm_sea(), 48, &mut rng);
///     Pipeline::new(Scene::new(sea, ShipWaveModel::default()), SystemConfig::paper_default(3, 3), 5)
/// };
///
/// let mut offline = make();
/// offline.run(2.0);
///
/// let mut streamed = make().stream();
/// streamed.run(2.0);
///
/// assert_eq!(streamed.pipeline().trace(), offline.trace());
/// assert_eq!(streamed.pipeline().now().to_bits(), offline.now().to_bits());
/// ```
pub trait StreamExt {
    /// Wraps the pipeline in a streaming driver with default chunking.
    fn stream(self) -> PipelineStream;
    /// Wraps the pipeline in a streaming driver with explicit chunking.
    fn stream_with(self, config: StreamDriverConfig) -> PipelineStream;
}

impl StreamExt for Pipeline {
    fn stream(self) -> PipelineStream {
        PipelineStream::new(self, StreamDriverConfig::default())
    }

    fn stream_with(self, config: StreamDriverConfig) -> PipelineStream {
        PipelineStream::new(self, config)
    }
}
