//! The online detection engine: per-node sample chunks in, alarms and
//! window verdicts out.
//!
//! [`StreamEngine`] is the paper's node-level detector bank run as a
//! push-based service. Producers feed raw 50 Hz z-axis chunks into
//! bounded per-node ring buffers ([`StreamEngine::push_chunk`], with
//! backpressure when a ring fills); [`StreamEngine::pump`] then
//!
//! 1. bulk-drains each ring into a reusable buffer and runs the whole
//!    backlog through that node's incremental [`NodeDetector`] in one
//!    [`NodeDetector::ingest_block`] call (EWMA mean/std and adaptive
//!    threshold, eq. 4–6; anomaly frequency, eq. 7; crossing energy,
//!    eq. 8) — alarms come out tagged with the exact sample at which
//!    they fired;
//! 2. feeds the same buffer into the node's [`SlidingStft`], which
//!    keeps the `frame_len − hop` overlap in place between hops and
//!    analyses each completed frame through the real-input FFT fast
//!    path (no per-frame allocation, no per-sample bookkeeping);
//! 3. batches every ready window across nodes through a `sid-exec`
//!    pool for full spectral classification (Fig. 6/7 single-peak vs.
//!    multi-peak + wavelet concentration).
//!
//! The whole engine state — detectors, pending rings, half-assembled
//! windows — snapshots to a serializable [`EngineSnapshot`] and
//! restores bit-identically, so a long-running deployment can stop and
//! resume without re-calibrating.

use serde::{Deserialize, Serialize};

use sid_core::{
    Classification, ClassifierConfig, DetectorConfig, NodeDetector, NodeReport, SpectralClassifier,
};
use sid_dsp::{DspResult, SlidingStft};
use sid_exec::Pool;
use sid_net::NodeId;

use crate::ring::RingBuffer;

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Node-level detector parameters (eq. 4–8).
    pub detector: DetectorConfig,
    /// Spectral classifier parameters; `classifier.stft` also fixes the
    /// window frame length and hop.
    pub classifier: ClassifierConfig,
    /// Per-node ingest ring capacity in samples. Pushes beyond it are
    /// rejected (backpressure) until `pump` drains the ring.
    pub ring_capacity: usize,
}

impl StreamConfig {
    /// The paper's defaults: 50 Hz detector, 2048-point STFT with 1024
    /// hop, and ~82 s of ring headroom per node.
    pub fn paper_default() -> Self {
        StreamConfig {
            detector: DetectorConfig::paper_default(),
            classifier: ClassifierConfig::paper_default(),
            ring_capacity: 4096,
        }
    }
}

/// One output of a [`StreamEngine::pump`] cycle, in deterministic
/// (node-major, sample-ordered) emission order.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOutput {
    /// A node-level alarm (eq. 7 threshold crossing).
    Alarm {
        /// Emitting node index.
        node: usize,
        /// The report, stamped with the node's sample clock.
        report: NodeReport,
    },
    /// A completed STFT window's spectral verdict.
    Window {
        /// Owning node index.
        node: usize,
        /// Index of the sample just past the window's end — windows of
        /// one node are strictly ordered by this.
        end_sample: u64,
        /// Dominant spectral peak of the frame in Hz (from the
        /// scratch-reused hop STFT).
        peak_hz: f64,
        /// Full classification of the window (batched on the pool).
        classification: Classification,
    },
}

impl StreamOutput {
    /// The node this output belongs to.
    pub fn node(&self) -> usize {
        match self {
            StreamOutput::Alarm { node, .. } | StreamOutput::Window { node, .. } => *node,
        }
    }
}

/// Everything a node accumulates between pumps.
#[derive(Debug, Clone)]
struct NodeState {
    detector: NodeDetector,
    /// Raw samples pushed but not yet pumped.
    pending: RingBuffer<f64>,
    /// Streaming STFT assembler: holds the partial frame between pumps
    /// and the node's absolute sample clock.
    sliding: SlidingStft,
}

/// Serializable engine state: detectors mid-episode, unpumped ring
/// contents and half-assembled windows. Restoring with the same
/// [`StreamConfig`] resumes the run bit-identically (see
/// DESIGN.md §12 for the format).
#[derive(Debug, Clone, Serialize)]
pub struct EngineSnapshot {
    nodes: Vec<NodeSnapshot>,
    /// High-water mark of resident samples at snapshot time. Absent in
    /// snapshots serialized before the field existed; those restore with
    /// the mark re-seeded from the resident contents, exactly as before
    /// (see the manual [`Deserialize`] impl — the vendored serde shim
    /// has no `#[serde(default)]`).
    peak_resident: usize,
}

impl Deserialize for EngineSnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct EngineSnapshot"))?;
        Ok(EngineSnapshot {
            nodes: Deserialize::from_value(serde::map_get(m, "nodes")?)?,
            // Absent in pre-migration snapshots: default, not error.
            peak_resident: match serde::map_get(m, "peak_resident") {
                Ok(fv) => Deserialize::from_value(fv)?,
                Err(_) => 0,
            },
        })
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeSnapshot {
    detector: NodeDetector,
    pending: Vec<f64>,
    window: Vec<f64>,
    ingested: u64,
}

/// A ready-to-classify window lifted out of the sequential drain so the
/// expensive classification can batch across nodes on the pool.
struct ReadyWindow {
    node: usize,
    end_sample: u64,
    peak_hz: f64,
    samples: Vec<f64>,
}

/// Push-based online detector bank. See the [module docs](self).
pub struct StreamEngine {
    config: StreamConfig,
    classifier: SpectralClassifier,
    nodes: Vec<NodeState>,
    /// Reused bulk-drain buffer: each pump empties one node's ring into
    /// it and runs the detector and STFT passes over the whole block.
    drain: Vec<f64>,
    /// Reused per-node detector report buffer (sample-tagged).
    reports: Vec<(u64, NodeReport)>,
    /// Samples currently resident across rings and windows.
    buffered: usize,
    /// High-water mark of `buffered` (plus window assembly) — the
    /// engine's peak resident sample memory.
    peak_buffered: usize,
}

impl StreamEngine {
    /// Creates an engine for `node_count` producers.
    ///
    /// # Errors
    ///
    /// Returns an error when the classifier/STFT configuration is
    /// rejected by the DSP layer (e.g. a non-power-of-two frame).
    pub fn new(config: StreamConfig, node_count: usize) -> DspResult<Self> {
        let classifier = SpectralClassifier::new(config.classifier)?;
        let nodes = (0..node_count)
            .map(|idx| {
                Ok(NodeState {
                    detector: NodeDetector::new(NodeId::from(idx), config.detector),
                    pending: RingBuffer::with_capacity(config.ring_capacity),
                    sliding: SlidingStft::new(config.classifier.stft)?,
                })
            })
            .collect::<DspResult<Vec<_>>>()?;
        Ok(StreamEngine {
            config,
            classifier,
            nodes,
            drain: Vec::new(),
            reports: Vec::new(),
            buffered: 0,
            peak_buffered: 0,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Number of producer nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Peak resident sample memory so far: the high-water mark of
    /// samples held in ingest rings plus window assembly buffers.
    pub fn peak_resident_samples(&self) -> usize {
        self.peak_buffered
    }

    /// Free ring capacity for `node` — how many samples the next
    /// [`push_chunk`](Self::push_chunk) can accept.
    pub fn free_capacity(&self, node: usize) -> usize {
        self.nodes[node].pending.free()
    }

    /// Pushes a chunk of raw z-axis samples for `node`, returning how
    /// many were accepted. A short count is backpressure: the caller
    /// should [`pump`](Self::pump) (or drop data knowingly) before
    /// retrying the remainder.
    pub fn push_chunk(&mut self, node: usize, samples: &[f64]) -> usize {
        let state = &mut self.nodes[node];
        let mut accepted = 0;
        for &sample in samples {
            if state.pending.push(sample).is_err() {
                break;
            }
            accepted += 1;
        }
        self.buffered += accepted;
        self.peak_buffered = self.peak_buffered.max(self.buffered);
        accepted
    }

    /// Drains every ring through its detector, assembles hop windows,
    /// and batch-classifies the ready ones on `pool`.
    ///
    /// Determinism: the outputs for any one node form a sample-ordered
    /// sequence that is identical for every chunking, pump cadence and
    /// pool size; within one pump, nodes are drained in index order.
    pub fn pump(&mut self, pool: &Pool) -> Vec<StreamOutput> {
        let dt = 1.0 / self.config.detector.sample_rate;
        let mut alarms: Vec<(usize, StreamOutput)> = Vec::new();
        let mut ready: Vec<ReadyWindow> = Vec::new();
        for (idx, state) in self.nodes.iter_mut().enumerate() {
            self.drain.clear();
            let drained = state.pending.drain_into(&mut self.drain);
            if drained == 0 {
                continue;
            }
            self.buffered -= drained;
            // Detector pass: the whole backlog in one block call. Each
            // report comes back tagged with the absolute count of
            // samples consumed when it fired.
            let start = state.sliding.samples_consumed();
            self.reports.clear();
            state
                .detector
                .ingest_block(start, dt, &self.drain, &mut self.reports);
            // STFT pass: the sliding assembler completes hop-advanced
            // frames over the same block. Alarms interleave back exactly
            // where the old per-sample loop put them — an alarm fired at
            // sample `c` precedes a window ending at that same `c`, and
            // each remembers how many windows were ready before it.
            let mut report_iter = self.reports.drain(..).peekable();
            state
                .sliding
                .push(&self.drain, |end_sample, raw, frame| {
                    while let Some((_, report)) =
                        report_iter.next_if(|&(c, _)| c <= end_sample)
                    {
                        alarms.push((ready.len(), StreamOutput::Alarm { node: idx, report }));
                    }
                    let peak_bin = frame
                        .power
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map_or(0, |(k, _)| k);
                    ready.push(ReadyWindow {
                        node: idx,
                        end_sample,
                        peak_hz: peak_bin as f64 * frame.bin_hz,
                        samples: raw.to_vec(),
                    });
                })
                .expect("planned configuration analyses cleanly");
            for (_, report) in report_iter {
                alarms.push((ready.len(), StreamOutput::Alarm { node: idx, report }));
            }
        }
        // Batch the expensive full classification across every node's
        // ready windows; par_map returns results in input order, so the
        // output sequence is identical at any pool size.
        let classifier = &self.classifier;
        let verdicts: Vec<Classification> = pool.par_map(&ready, |w| {
            classifier
                .classify_window(&w.samples)
                .expect("ready windows carry exactly one frame")
        });
        // Interleave alarms back where they fired relative to windows:
        // each alarm remembered how many windows were ready before it.
        let mut out = Vec::with_capacity(alarms.len() + ready.len());
        let mut alarm_iter = alarms.into_iter().peekable();
        for (i, (window, verdict)) in ready.into_iter().zip(verdicts).enumerate() {
            while alarm_iter.peek().is_some_and(|(before, _)| *before <= i) {
                out.push(alarm_iter.next().expect("peeked").1);
            }
            out.push(StreamOutput::Window {
                node: window.node,
                end_sample: window.end_sample,
                peak_hz: window.peak_hz,
                classification: verdict,
            });
        }
        out.extend(alarm_iter.map(|(_, alarm)| alarm));
        out
    }

    /// Captures the full detector state: every node's detector,
    /// unpumped ring contents and half-assembled window. Serialize it
    /// (e.g. with `serde_json`) to persist a run.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            nodes: self
                .nodes
                .iter()
                .map(|state| NodeSnapshot {
                    detector: state.detector.clone(),
                    pending: state.pending.to_vec(),
                    window: state.sliding.pending().to_vec(),
                    ingested: state.sliding.samples_consumed(),
                })
                .collect(),
            peak_resident: self.peak_buffered,
        }
    }

    /// Rebuilds an engine from a snapshot taken with the same `config`.
    /// The resumed engine produces bit-identical outputs to one that
    /// never stopped.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is rejected by the DSP
    /// layer, or when the snapshot doesn't fit it (ring contents larger
    /// than `ring_capacity`, or a saved window at least a frame long).
    pub fn restore(config: StreamConfig, snapshot: &EngineSnapshot) -> DspResult<Self> {
        let mut engine = StreamEngine::new(config, snapshot.nodes.len())?;
        for (state, saved) in engine.nodes.iter_mut().zip(&snapshot.nodes) {
            if saved.pending.len() > config.ring_capacity {
                return Err(sid_dsp::DspError::LengthMismatch {
                    expected: config.ring_capacity,
                    actual: saved.pending.len(),
                });
            }
            state.detector = saved.detector.clone();
            state.pending = RingBuffer::from_items(config.ring_capacity, &saved.pending);
            state.sliding.restore(saved.ingested, &saved.window)?;
            engine.buffered += saved.pending.len();
        }
        // The high-water mark survives migration: a restored engine
        // reports the same peak as one that never stopped. (It used to
        // be silently re-seeded from the resident contents, losing the
        // pre-snapshot peak.)
        engine.peak_buffered = engine.buffered.max(snapshot.peak_resident);
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn small_config() -> StreamConfig {
        // A 256-point frame keeps the tests fast while exercising the
        // same assembly/classification machinery as the 2048 default.
        let mut classifier = ClassifierConfig::paper_default();
        classifier.stft.frame_len = 256;
        classifier.stft.hop = 128;
        StreamConfig {
            detector: DetectorConfig::paper_default(),
            classifier,
            ring_capacity: 512,
        }
    }

    fn calm_z(t: f64) -> f64 {
        1024.0 + 15.0 * (2.0 * PI * 0.3 * t).sin() + 5.0 * (2.0 * PI * 0.7 * t + 1.0).sin()
    }

    fn burst(t: f64, t0: f64, amp: f64) -> f64 {
        let env = (-0.5 * ((t - t0) / 1.5f64).powi(2)).exp();
        amp * env * (2.0 * PI * 0.4 * (t - t0)).sin()
    }

    fn signal(node: usize, i: u64) -> f64 {
        let t = i as f64 / 50.0;
        calm_z(t) + burst(t, 60.0 + node as f64, 140.0)
    }

    /// Splitting the same sample stream into arbitrary chunk/pump
    /// patterns never changes the outputs.
    #[test]
    fn chunking_is_transparent() {
        let pool = Pool::new(2);
        let total: u64 = 50 * 90;
        let run = |chunk_sizes: &[usize]| -> Vec<StreamOutput> {
            let mut engine = StreamEngine::new(small_config(), 2).expect("config valid");
            let mut out = Vec::new();
            let mut fed = [0u64; 2];
            let mut pattern = chunk_sizes.iter().cycle();
            while fed.iter().any(|&f| f < total) {
                for (node, done) in fed.iter_mut().enumerate() {
                    let want = (*pattern.next().expect("cycle") as u64).min(total - *done);
                    let chunk: Vec<f64> =
                        (*done..*done + want).map(|i| signal(node, i)).collect();
                    let mut offset = 0;
                    while offset < chunk.len() {
                        let accepted = engine.push_chunk(node, &chunk[offset..]);
                        offset += accepted;
                        if offset < chunk.len() {
                            out.extend(engine.pump(&pool));
                        }
                    }
                    *done += want;
                }
                out.extend(engine.pump(&pool));
            }
            out
        };
        let a = run(&[64]);
        let b = run(&[1, 333, 7, 50]);
        // Cross-node interleaving within one pump is node-major, so the
        // invariant is per-node: each node's output sequence must not
        // depend on how the stream was chunked or pumped.
        for node in 0..2 {
            let fa: Vec<&StreamOutput> = a.iter().filter(|o| o.node() == node).collect();
            let fb: Vec<&StreamOutput> = b.iter().filter(|o| o.node() == node).collect();
            assert_eq!(fa, fb, "node {node} diverged under rechunking");
        }
        assert!(
            a.iter().any(|o| matches!(o, StreamOutput::Alarm { .. })),
            "the burst should alarm"
        );
        assert!(
            a.iter().any(|o| matches!(o, StreamOutput::Window { .. })),
            "windows should complete"
        );
    }

    /// The engine matches a plain offline NodeDetector fed the same
    /// stream: incremental chunking adds nothing and loses nothing.
    #[test]
    fn alarms_match_offline_detector() {
        let pool = Pool::new(1);
        let cfg = small_config();
        let mut engine = StreamEngine::new(cfg, 1).expect("config valid");
        let mut offline = NodeDetector::new(NodeId::from(0usize), cfg.detector);
        let mut offline_reports = Vec::new();
        let mut streamed_reports = Vec::new();
        for i in 0..(50 * 90) {
            let z = signal(0, i);
            if let Some(r) = offline.ingest(i as f64 / 50.0, z) {
                offline_reports.push(r);
            }
            if engine.push_chunk(0, &[z]) == 0 {
                unreachable!("ring sized for the stream");
            }
            if i % 97 == 0 {
                for out in engine.pump(&pool) {
                    if let StreamOutput::Alarm { report, .. } = out {
                        streamed_reports.push(report);
                    }
                }
            }
        }
        for out in engine.pump(&pool) {
            if let StreamOutput::Alarm { report, .. } = out {
                streamed_reports.push(report);
            }
        }
        assert!(!offline_reports.is_empty());
        assert_eq!(streamed_reports, offline_reports);
    }

    /// Full stop/resume: snapshot at an arbitrary point (detector
    /// mid-episode, window half-assembled, samples still in the ring),
    /// restore, and require bit-identical continuation.
    #[test]
    fn snapshot_restore_round_trip_is_bit_identical() {
        let pool = Pool::new(2);
        let cfg = small_config();
        let mut engine = StreamEngine::new(cfg, 2).expect("config valid");
        let mut fed = [0u64; 2];
        let feed = |engine: &mut StreamEngine, fed: &mut [u64; 2], n: u64| {
            for (node, done) in fed.iter_mut().enumerate() {
                let chunk: Vec<f64> =
                    (*done..*done + n).map(|i| signal(node, i)).collect();
                assert_eq!(engine.push_chunk(node, &chunk), chunk.len());
                *done += n;
            }
        };
        // First half, pumped at an awkward cadence, plus 37 unpumped
        // samples left in the rings and a partial window in flight.
        for _ in 0..40 {
            feed(&mut engine, &mut fed, 83);
            engine.pump(&pool);
        }
        feed(&mut engine, &mut fed, 37);
        let snap = engine.snapshot();
        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        let parsed: EngineSnapshot = serde_json::from_str(&json).expect("snapshot parses");
        let mut resumed = StreamEngine::restore(cfg, &parsed).expect("snapshot fits config");
        // Second half, fed identically to both engines.
        let mut fed_resumed = fed;
        let mut out_original = Vec::new();
        let mut out_resumed = Vec::new();
        for _ in 0..40 {
            feed(&mut engine, &mut fed, 83);
            feed(&mut resumed, &mut fed_resumed, 83);
            out_original.extend(engine.pump(&pool));
            out_resumed.extend(resumed.pump(&pool));
        }
        assert!(!out_original.is_empty());
        assert_eq!(out_original, out_resumed);
    }

    /// Backpressure: a full ring rejects samples rather than growing,
    /// and the peak-resident gauge observes the high-water mark.
    #[test]
    fn full_ring_applies_backpressure() {
        let pool = Pool::new(1);
        let mut cfg = small_config();
        cfg.ring_capacity = 100;
        let mut engine = StreamEngine::new(cfg, 1).expect("config valid");
        let chunk: Vec<f64> = (0..150).map(|i| signal(0, i)).collect();
        assert_eq!(engine.push_chunk(0, &chunk), 100);
        assert_eq!(engine.free_capacity(0), 0);
        assert_eq!(engine.push_chunk(0, &chunk), 0);
        engine.pump(&pool);
        assert_eq!(engine.free_capacity(0), 100);
        assert!(engine.peak_resident_samples() >= 100);
    }
}
