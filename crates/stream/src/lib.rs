//! # sid-stream
//!
//! Push-based **online** execution for the SID reproduction — the
//! inference-serving shape of the codebase: bounded memory,
//! backpressure, incremental state, batched execution.
//!
//! The paper's detector is inherently streaming: buoys push 50 Hz
//! z-axis samples and must raise alarms *as the Kelvin wake arrives*
//! (SID §III–IV), not after an offline batch. This crate provides that
//! execution style twice over:
//!
//! * [`StreamEngine`] — the standalone detector bank. Per-node sample
//!   chunks enter through bounded [`RingBuffer`]s with explicit
//!   backpressure; each pump drains them through the incremental
//!   node-level detector (EWMA mean/std and adaptive threshold,
//!   eq. 4–6; anomaly frequency, eq. 7; crossing energy, eq. 8),
//!   assembles hop-advanced STFT windows with one reused scratch
//!   buffer, and batch-classifies ready windows across nodes on the
//!   `sid-exec` pool. The full detector state snapshots to a
//!   serializable [`EngineSnapshot`] and restores bit-identically.
//! * [`StreamExt::stream`] / [`PipelineStream`] — the streaming driver
//!   for the whole simulated system: it drives
//!   [`sid_core::Pipeline`] through its `begin_tick`/`finish_tick`
//!   seam from bounded per-node rings refilled in pool-synthesized
//!   chunks, and is **journal-byte-identical** to the offline
//!   [`Pipeline::run`](sid_core::Pipeline::run) at every chunk size
//!   and thread count (the `sid-dst` harness enforces this on every
//!   `check_stream` seed).
//!
//! Benchmarks: `cargo run --release -p sid-bench --bin stream_bench`
//! reports sustained samples/sec and peak resident window memory to
//! `results/BENCH_stream.json`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod engine;
pub mod ring;

pub use driver::{PipelineStream, StreamDriverConfig, StreamExt};
pub use engine::{EngineSnapshot, StreamConfig, StreamEngine, StreamOutput};
pub use ring::RingBuffer;
