//! A bounded ring buffer with explicit backpressure.
//!
//! The streaming engine and driver keep every queue *bounded*: a full
//! ring rejects the push and hands the item back instead of growing,
//! so resident memory is capped by construction and producers see the
//! backpressure directly ([`RingBuffer::push`] returns `Err`).

/// Fixed-capacity FIFO ring buffer.
///
/// Backed by a `Vec<Option<T>>` with a head index and length; push and
/// pop are O(1) and the storage never reallocates after construction.
///
/// ```
/// use sid_stream::RingBuffer;
///
/// let mut ring = RingBuffer::with_capacity(2);
/// ring.push(1).unwrap();
/// ring.push(2).unwrap();
/// assert_eq!(ring.push(3), Err(3)); // full: backpressure, item returned
/// assert_eq!(ring.pop(), Some(1));  // FIFO order
/// ring.push(3).unwrap();            // freed slot reused (wraparound)
/// assert_eq!(ring.pop(), Some(2));
/// assert_eq!(ring.pop(), Some(3));
/// assert_eq!(ring.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    slots: Vec<Option<T>>,
    /// Index of the oldest element (next to pop).
    head: usize,
    len: usize,
}

impl<T> RingBuffer<T> {
    /// Creates an empty ring holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be at least 1");
        RingBuffer {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the next push would be rejected.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity() - self.len
    }

    /// Appends `item`, or returns it back as `Err` when the ring is
    /// full — the caller decides whether to drop, block or flush.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        let tail = (self.head + self.len) % self.capacity();
        self.slots[tail] = Some(item);
        self.len += 1;
        Ok(())
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let item = self.slots[self.head].take();
        self.head = (self.head + 1) % self.capacity();
        self.len -= 1;
        debug_assert!(item.is_some(), "occupied slot was empty");
        item
    }

    /// Pops every buffered item into `out` (oldest → newest), returning
    /// how many were moved.
    ///
    /// Equivalent to `while let Some(x) = ring.pop() { out.push(x) }` but
    /// lets the hot path drain a whole backlog in one call against a
    /// caller-owned, reusable buffer.
    pub fn drain_into(&mut self, out: &mut Vec<T>) -> usize {
        let moved = self.len;
        out.reserve(moved);
        while let Some(item) = self.pop() {
            out.push(item);
        }
        moved
    }

    /// Drops all buffered items, keeping the capacity.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.head = 0;
        self.len = 0;
    }

    /// Iterates the buffered items oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len).map(move |i| {
            let idx = (self.head + i) % self.capacity();
            self.slots[idx].as_ref().expect("occupied slot")
        })
    }
}

impl<T: Clone> RingBuffer<T> {
    /// Copies the buffered items oldest → newest (snapshot support).
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().cloned().collect()
    }

    /// Rebuilds a ring of `capacity` pre-filled with `items` in order
    /// (snapshot restore).
    ///
    /// # Panics
    ///
    /// Panics if `items` exceeds `capacity` or `capacity` is zero.
    pub fn from_items(capacity: usize, items: &[T]) -> Self {
        assert!(
            items.len() <= capacity,
            "{} items exceed ring capacity {capacity}",
            items.len()
        );
        let mut ring = RingBuffer::with_capacity(capacity);
        for item in items {
            let pushed = ring.push(item.clone());
            debug_assert!(pushed.is_ok());
        }
        ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut ring = RingBuffer::with_capacity(4);
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn wraparound_over_many_laps_keeps_order_and_bounds() {
        // A capacity-3 ring driven through hundreds of push/pop cycles:
        // the head index wraps repeatedly, order and occupancy must hold.
        let mut ring = RingBuffer::with_capacity(3);
        let mut next_in = 0u32;
        let mut next_out = 0u32;
        for lap in 0..200 {
            // Alternate fill levels so the head lands on every slot.
            let burst = 1 + (lap % 3);
            for _ in 0..burst {
                if ring.push(next_in).is_ok() {
                    next_in += 1;
                }
                assert!(ring.len() <= ring.capacity());
            }
            while let Some(got) = ring.pop() {
                assert_eq!(got, next_out);
                next_out += 1;
            }
        }
        assert_eq!(next_in, next_out, "every pushed item was popped once");
        assert!(next_in > 300, "the test actually cycled the ring");
    }

    #[test]
    fn full_ring_rejects_and_returns_the_item() {
        let mut ring = RingBuffer::with_capacity(2);
        ring.push("a").unwrap();
        ring.push("b").unwrap();
        assert!(ring.is_full());
        assert_eq!(ring.push("c"), Err("c"));
        // Rejection changed nothing.
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.pop(), Some("a"));
        assert_eq!(ring.free(), 1);
        ring.push("c").unwrap();
        assert_eq!(ring.to_vec(), vec!["b", "c"]);
    }

    #[test]
    fn snapshot_round_trip_mid_wrap() {
        // Put the ring into a wrapped state (head != 0), snapshot, and
        // rebuild: contents and order must survive.
        let mut ring = RingBuffer::with_capacity(4);
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        ring.pop();
        ring.pop();
        ring.push(4).unwrap(); // physically wraps to slot 0
        let items = ring.to_vec();
        assert_eq!(items, vec![2, 3, 4]);
        let mut rebuilt = RingBuffer::from_items(4, &items);
        assert_eq!(rebuilt.len(), 3);
        for want in [2, 3, 4] {
            assert_eq!(rebuilt.pop(), Some(want));
        }
    }

    #[test]
    fn drain_into_empties_in_fifo_order_and_appends() {
        let mut ring = RingBuffer::with_capacity(4);
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        ring.pop();
        ring.push(4).unwrap(); // wrapped state
        let mut out = vec![-1];
        assert_eq!(ring.drain_into(&mut out), 4);
        assert_eq!(out, vec![-1, 1, 2, 3, 4]);
        assert!(ring.is_empty());
        assert_eq!(ring.drain_into(&mut out), 0);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut ring = RingBuffer::with_capacity(2);
        ring.push(1).unwrap();
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 2);
        ring.push(7).unwrap();
        assert_eq!(ring.pop(), Some(7));
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = RingBuffer::<u8>::with_capacity(0);
    }
}
