//! Property tests for the neighbor-index equivalence (DESIGN.md §16):
//! the spatial-hash index must produce tables bitwise equal to the
//! brute-force scan on arbitrary placements — including co-located
//! nodes, exact-boundary distances, negative coordinates, and the
//! degenerate 1-node layout. The brute-force path is the oracle; any
//! divergence here is a determinism bug that would silently fork
//! journals between small and fleet-scale deployments.

use proptest::prelude::*;

use sid_net::{NeighborIndex, NodeId, Position, Topology};

fn positions_of(raw: &[(f64, f64)]) -> Vec<Position> {
    raw.iter().map(|&(x, y)| Position::new(x, y)).collect()
}

/// Builds both index variants and asserts every neighbor list is
/// bitwise equal and strictly ascending.
fn assert_index_equivalence(positions: Vec<Position>, range: f64) -> Result<(), String> {
    let brute = Topology::from_positions_with(positions.clone(), range, NeighborIndex::BruteForce);
    let hash = Topology::from_positions_with(positions, range, NeighborIndex::SpatialHash);
    for id in brute.node_ids() {
        let b = brute.neighbors(id);
        let h = hash.neighbors(id);
        prop_assert_eq!(b, h, "index divergence at node {}", id);
        prop_assert!(
            b.windows(2).all(|w| w[0] < w[1]),
            "neighbors of {} not strictly ascending: {:?}",
            id,
            b
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hash_matches_brute_force_on_random_placements(
        raw in prop::collection::vec((-500.0..500.0f64, -500.0..500.0f64), 1..200),
        range in 5.0..80.0f64,
    ) {
        assert_index_equivalence(positions_of(&raw), range)?;
    }

    #[test]
    fn hash_matches_brute_force_on_negative_coordinates(
        raw in prop::collection::vec((-2000.0..-100.0f64, -1500.0..-50.0f64), 1..120),
        range in 5.0..80.0f64,
    ) {
        assert_index_equivalence(positions_of(&raw), range)?;
    }

    #[test]
    fn hash_matches_brute_force_with_co_located_nodes(
        raw in prop::collection::vec((-300.0..300.0f64, -300.0..300.0f64), 1..80),
        picks in prop::collection::vec(0usize..80, 1..40),
        range in 5.0..60.0f64,
    ) {
        // Duplicate a random selection of the base points so several
        // nodes share exact coordinates (distance 0, same hash cell).
        let mut positions = positions_of(&raw);
        for &p in &picks {
            positions.push(positions[p % raw.len()]);
        }
        assert_index_equivalence(positions, range)?;
    }

    #[test]
    fn exact_boundary_distance_is_inclusive_in_both_indexes(
        pairs in prop::collection::vec((-1000i32..1000, -1000i32..1000), 1..40),
        range_m in 5u32..60,
    ) {
        // Integer-valued coordinates and range keep every sum exact in
        // f64, so the second node of each pair sits at *exactly*
        // `radio_range` metres — pinning the inclusive boundary on both
        // implementations. Pairs are spread far apart so each is
        // isolated from the others.
        let range = f64::from(range_m);
        let mut positions = Vec::new();
        for (k, &(jx, jy)) in pairs.iter().enumerate() {
            let base_x = f64::from(k as i32 * 10_000 + jx);
            let base_y = f64::from(jy);
            positions.push(Position::new(base_x, base_y));
            positions.push(Position::new(base_x + range, base_y));
        }
        let brute = Topology::from_positions_with(
            positions.clone(), range, NeighborIndex::BruteForce);
        let hash = Topology::from_positions_with(positions, range, NeighborIndex::SpatialHash);
        for (k, _) in pairs.iter().enumerate() {
            let (a, b) = (NodeId::from(2 * k), NodeId::from(2 * k + 1));
            prop_assert_eq!(brute.neighbors(a), &[b]);
            prop_assert_eq!(brute.neighbors(b), &[a]);
            prop_assert_eq!(hash.neighbors(a), &[b]);
            prop_assert_eq!(hash.neighbors(b), &[a]);
        }
    }

    #[test]
    fn degenerate_single_node_has_no_neighbors(
        x in -1e6..1e6f64,
        y in -1e6..1e6f64,
        range in 1.0..100.0f64,
    ) {
        for index in [NeighborIndex::BruteForce, NeighborIndex::SpatialHash] {
            let t = Topology::from_positions_with(
                vec![Position::new(x, y)], range, index);
            prop_assert!(t.neighbors(NodeId::from(0)).is_empty());
        }
    }
}
