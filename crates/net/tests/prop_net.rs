//! Property-based tests on the WSN substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sid_net::{EventScheduler, Network, NodeId, RadioModel, StaticCells, Topology};

proptest! {
    #[test]
    fn scheduler_pops_in_time_order(times in prop::collection::vec(0.0..1e6f64, 1..200)) {
        let mut q = EventScheduler::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let out = q.pop_until(f64::INFINITY);
        prop_assert_eq!(out.len(), times.len());
        for w in out.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn scheduler_ties_are_fifo(n in 1usize..100) {
        let mut q = EventScheduler::new();
        for i in 0..n {
            q.schedule(1.0, i);
        }
        let out = q.pop_until(2.0);
        for (i, (_, v)) in out.iter().enumerate() {
            prop_assert_eq!(*v, i);
        }
    }

    #[test]
    fn grid_hops_match_manhattan(
        rows in 1usize..8,
        cols in 1usize..8,
        src_r in 0usize..8,
        src_c in 0usize..8,
    ) {
        prop_assume!(src_r < rows && src_c < cols);
        // Orthogonal-only radio range: hops = Manhattan distance.
        let topo = Topology::grid(rows, cols, 25.0, 30.0);
        let src = topo.at_grid(src_r, src_c).unwrap();
        let hops = topo.hops_from(src);
        for id in topo.node_ids() {
            let r = topo.row_of(id).unwrap();
            let c = topo.col_of(id).unwrap();
            let manhattan = r.abs_diff(src_r) + c.abs_diff(src_c);
            prop_assert_eq!(hops[id.index()] as usize, manhattan);
        }
    }

    #[test]
    fn nodes_within_hops_is_monotone(k1 in 0u16..6, dk in 1u16..4) {
        let topo = Topology::grid(6, 6, 25.0, 30.0);
        let centre = topo.at_grid(3, 3).unwrap();
        let small = topo.nodes_within_hops(centre, k1);
        let large = topo.nodes_within_hops(centre, k1 + dk);
        prop_assert!(small.len() <= large.len());
        for n in &small {
            prop_assert!(large.contains(n));
        }
    }

    #[test]
    fn static_cells_partition_everything(
        rows in 1usize..7,
        cols in 1usize..7,
        cr in 1usize..4,
        cc in 1usize..4,
    ) {
        let topo = Topology::grid(rows, cols, 25.0, 30.0);
        let cells = StaticCells::partition(&topo, cr, cc);
        let mut seen = 0;
        for c in 0..cells.cell_count() {
            let members = cells.members(sid_net::CellId::from(c));
            seen += members.len();
            if !members.is_empty() {
                let head = cells.head_of(sid_net::CellId::from(c));
                prop_assert!(members.contains(&head));
            }
        }
        prop_assert_eq!(seen, topo.len());
    }

    #[test]
    fn reliable_flood_reaches_exactly_the_ball(
        seed in 0u64..1000,
        hops in 1u16..6,
    ) {
        let topo = Topology::grid(5, 5, 25.0, 30.0);
        let centre = topo.at_grid(2, 2).unwrap();
        let eligible = topo.nodes_within_hops(centre, hops).len() - 1;
        let mut net: Network<u8> = Network::new(topo, RadioModel::reliable());
        let mut rng = StdRng::seed_from_u64(seed);
        let reached = net.flood(centre, 0, 0.0, hops, &mut rng);
        prop_assert_eq!(reached, eligible);
        prop_assert_eq!(net.poll(f64::INFINITY).len(), eligible);
    }

    #[test]
    fn lossy_traffic_accounting_balances(seed in 0u64..500) {
        let topo = Topology::grid(4, 4, 25.0, 30.0);
        let mut net: Network<u8> = Network::new(topo, RadioModel::lossy_no_retry());
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..16usize {
            net.broadcast(NodeId::from(i), 0, 0.0, &mut rng);
        }
        let delivered = net.poll(f64::INFINITY).len() as u64;
        let s = net.stats();
        prop_assert_eq!(s.transmissions, delivered + s.dropped);
        prop_assert_eq!(s.delivered, delivered);
    }

    #[test]
    fn route_latency_scales_with_hops(seed in 0u64..200) {
        let topo = Topology::grid(1, 9, 25.0, 30.0);
        let mut net: Network<u8> = Network::new(topo, RadioModel::reliable());
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(net.route(NodeId::new(0), NodeId::new(8), 0, 0.0, &mut rng));
        let out = net.poll(f64::INFINITY);
        prop_assert_eq!(out.len(), 1);
        prop_assert!((out[0].0 - 8.0 * 0.005).abs() < 1e-12);
    }
}
