//! # sid-net
//!
//! Wireless-sensor-network substrate for the SID reproduction: the
//! communication fabric the paper's cooperative detection runs on,
//! replacing the real iMote2 radio deployment with a discrete-event
//! simulation (see DESIGN.md §2).
//!
//! * [`Topology`] — grid (or arbitrary) node placement, disc-radio
//!   neighborhoods, BFS hop counts.
//! * [`RadioModel`] — per-transmission loss and latency jitter, the error
//!   processes the paper cites as motivation for cluster-level fusion.
//! * [`EventScheduler`] / [`Network`] — time-ordered delivery with
//!   unicast, neighborhood broadcast, and N-hop flooding.
//! * [`StaticCells`] / [`TempCluster`] — the paper's static cells and
//!   on-demand temporary clusters (Section IV-C).
//! * [`SyncModel`] — residual time-sync error versus hop distance.
//! * [`GilbertElliott`] / [`FaultPlan`] — burst-loss channels and
//!   replayable node-fault campaigns for chaos runs (see DESIGN.md's
//!   failure-model section).
//!
//! # Examples
//!
//! Form a 6-hop temporary cluster and flood the invite, with losses:
//!
//! ```
//! use rand::SeedableRng;
//! use sid_net::{Network, RadioModel, TempCluster, Topology};
//!
//! let topo = Topology::grid(6, 6, 25.0, 30.0);
//! let head = topo.at_grid(3, 3).unwrap();
//! let cluster = TempCluster::form(&topo, head, 6, 0.0, 10.0);
//! let mut net: Network<&str> = Network::new(topo, RadioModel::lossy());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2);
//! let reached = net.flood(head, "join", 0.0, 6, &mut rng);
//! assert!(reached <= cluster.members().len() - 1);
//! ```

// `!(x > 0.0)`-style validation is used deliberately: unlike `x <= 0.0`,
// the negated comparison also rejects NaN inputs.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod fault;
mod ids;
pub mod localization;
pub mod radio;
pub mod shard;
pub mod sim;
pub mod timesync;
pub mod topology;

pub use cluster::{StaticCells, TempCluster, TempClusterState};
pub use fault::{BurstState, FaultEvent, FaultKind, FaultPlan, FaultPlanConfig, GilbertElliott};
pub use localization::{trilaterate, LocalizationError, LocalizationFix, RangeMeasurement};
pub use ids::{CellId, NodeId};
pub use radio::RadioModel;
pub use shard::ShardMap;
pub use sim::{CongestionModel, Delivery, EventScheduler, NetStats, Network, ShardedScheduler};
pub use timesync::SyncModel;
pub use topology::{NeighborIndex, Position, Topology, SPATIAL_HASH_THRESHOLD};
