//! Fault injection: bursty link loss and scheduled node faults.
//!
//! The paper's robustness argument — cooperative cluster-level fusion
//! survives "wireless communication errors \[20\] and possible network
//! congestions \[19\]" and "some nodes with hardware errors" — is only an
//! argument until the failure processes are actually injected. This module
//! supplies them:
//!
//! * [`GilbertElliott`] — a two-state Markov burst-loss channel layered on
//!   the i.i.d. [`RadioModel`](crate::RadioModel). Sea-surface 802.15.4
//!   links fail in episodes (a swell shadowing the antenna, spray over the
//!   enclosure), not as independent coin flips; burst loss is what actually
//!   starves a cluster head of member reports.
//! * [`FaultPlan`] — a deterministic, seedable campaign of per-node fault
//!   events ([`FaultKind`]): battery-depletion deaths, transient outages,
//!   clock-drift spikes, and stuck/saturated accelerometer channels.
//!
//! The plan is generated up front and replayed by the system simulation,
//! so a chaos run is exactly reproducible from `(config, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A two-state (Good/Bad) Markov burst-loss channel — the classic
/// Gilbert–Elliott model.
///
/// The chain is stepped once per physical transmission: from Good it
/// enters a burst with probability `p_good_to_bad`; from Bad it recovers
/// with probability `p_bad_to_good`. The transmission is then lost with
/// the state's loss probability. Mean burst length is
/// `1 / p_bad_to_good` transmissions.
///
/// # Examples
///
/// ```
/// use sid_net::fault::GilbertElliott;
///
/// let ge = GilbertElliott::sea_surface(0.5);
/// assert!(ge.average_loss() > 0.0 && ge.average_loss() < 0.5);
/// assert_eq!(GilbertElliott::disabled().average_loss(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// P(Good → Bad) per transmission.
    pub p_good_to_bad: f64,
    /// P(Bad → Good) per transmission.
    pub p_bad_to_good: f64,
    /// Loss probability while in the Good state.
    pub loss_good: f64,
    /// Loss probability while in the Bad (burst) state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A channel that never loses anything (the burst layer is off).
    pub fn disabled() -> Self {
        GilbertElliott {
            p_good_to_bad: 0.0,
            p_bad_to_good: 1.0,
            loss_good: 0.0,
            loss_bad: 0.0,
        }
    }

    /// A sea-surface burst profile parameterised by `severity` in
    /// `[0, 1]`: severity 0 is [`disabled`](Self::disabled); severity 1
    /// gives frequent long bursts (mean ~10 transmissions) that lose
    /// nearly every frame, on top of a clean Good state.
    pub fn sea_surface(severity: f64) -> Self {
        let s = severity.clamp(0.0, 1.0);
        if s <= 0.0 {
            return Self::disabled();
        }
        GilbertElliott {
            p_good_to_bad: 0.005 + 0.045 * s,
            p_bad_to_good: 0.25 - 0.15 * s,
            loss_good: 0.0,
            loss_bad: 0.6 + 0.4 * s,
        }
    }

    /// Whether the channel can never lose a frame.
    pub fn is_disabled(&self) -> bool {
        self.loss_good <= 0.0 && (self.loss_bad <= 0.0 || self.p_good_to_bad <= 0.0)
    }

    /// Stationary probability of being in the Bad state.
    pub fn steady_state_bad(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom <= 0.0 {
            0.0
        } else {
            self.p_good_to_bad / denom
        }
    }

    /// Long-run average loss probability.
    pub fn average_loss(&self) -> f64 {
        let pb = self.steady_state_bad();
        (1.0 - pb) * self.loss_good + pb * self.loss_bad
    }

    /// Mean burst length in transmissions (∞-free: recovery probability 0
    /// reports `f64::INFINITY`).
    pub fn mean_burst_len(&self) -> f64 {
        if self.p_bad_to_good <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.p_bad_to_good
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`.
    pub fn validate(&self) {
        for (name, p) in [
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must lie in [0, 1]");
        }
    }
}

impl Default for GilbertElliott {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Per-sender state of a [`GilbertElliott`] chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BurstState {
    in_burst: bool,
}

impl BurstState {
    /// Starts in the Good state.
    pub fn new() -> Self {
        BurstState { in_burst: false }
    }

    /// Whether the channel is currently in a burst.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// Steps the chain one transmission (transition first, then loss draw
    /// in the new state). Returns `true` if this transmission is lost.
    pub fn step<R: Rng + ?Sized>(&mut self, model: &GilbertElliott, rng: &mut R) -> bool {
        if self.in_burst {
            if rng.gen_bool(model.p_bad_to_good) {
                self.in_burst = false;
            }
        } else if model.p_good_to_bad > 0.0 && rng.gen_bool(model.p_good_to_bad) {
            self.in_burst = true;
        }
        let p = if self.in_burst {
            model.loss_bad
        } else {
            model.loss_good
        };
        p > 0.0 && rng.gen_bool(p)
    }
}

/// One kind of injected node fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Battery instantly depleted: the node powers off and never returns.
    Death,
    /// Transient outage (reboot loop, watchdog reset): the node is silent
    /// and unreachable for `duration` seconds, then recovers.
    Outage {
        /// Seconds the node stays down.
        duration: f64,
    },
    /// The crystal's drift rate jumps by `extra_ppm` (thermal shock); the
    /// local timestamp stays continuous but starts diverging faster.
    ClockDriftSpike {
        /// Added drift, parts per million (signed).
        extra_ppm: f64,
    },
    /// The accelerometer z channel sticks: every subsequent reading
    /// reports exactly `counts` (saturated rail or frozen ADC).
    StuckAccel {
        /// The stuck output, in ADC counts.
        counts: i32,
    },
}

/// A scheduled fault: `kind` strikes `node` at simulation time `time`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation time the fault strikes (s).
    pub time: f64,
    /// Victim node id.
    pub node: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// Parameters for drawing a random [`FaultPlan`].
///
/// Each fraction is the independent per-node probability of that fault
/// being scheduled somewhere in `[0, horizon)`. All-zero fractions produce
/// an empty plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Fault times are drawn uniformly in `[0, horizon)` seconds.
    pub horizon: f64,
    /// Per-node probability of a scheduled death.
    pub death_fraction: f64,
    /// Per-node probability of a transient outage.
    pub outage_fraction: f64,
    /// Shortest outage duration (s).
    pub outage_min_secs: f64,
    /// Longest outage duration (s).
    pub outage_max_secs: f64,
    /// Per-node probability of a clock-drift spike.
    pub drift_spike_fraction: f64,
    /// Largest spike magnitude (ppm); the sign is drawn randomly.
    pub drift_spike_max_ppm: f64,
    /// Per-node probability of a stuck/saturated accelerometer channel.
    pub stuck_fraction: f64,
    /// A node never scheduled for death or outage (typically the sink,
    /// which in a deployment is the wired gateway).
    pub spare: Option<u32>,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            horizon: 300.0,
            death_fraction: 0.0,
            outage_fraction: 0.0,
            outage_min_secs: 30.0,
            outage_max_secs: 120.0,
            drift_spike_fraction: 0.0,
            drift_spike_max_ppm: 500.0,
            stuck_fraction: 0.0,
            spare: None,
        }
    }
}

impl FaultPlanConfig {
    /// A chaos preset scaled by a single `intensity` knob in `[0, 1]`:
    /// `0.0` is a quiet plan, `1.0` schedules deaths/outages/drift
    /// spikes/stuck channels at the heaviest rates the chaos benches use.
    /// The scenario fuzzer (`sid-dst`) draws its fault campaigns through
    /// this, so one generated float controls the whole fault mix.
    pub fn chaos(intensity: f64, horizon: f64) -> Self {
        let k = intensity.clamp(0.0, 1.0);
        FaultPlanConfig {
            horizon,
            death_fraction: 0.15 * k,
            outage_fraction: 0.15 * k,
            drift_spike_fraction: 0.20 * k,
            stuck_fraction: 0.10 * k,
            ..FaultPlanConfig::default()
        }
    }

    /// Whether this configuration can produce any event at all.
    pub fn is_quiet(&self) -> bool {
        self.death_fraction <= 0.0
            && self.outage_fraction <= 0.0
            && self.drift_spike_fraction <= 0.0
            && self.stuck_fraction <= 0.0
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if a fraction lies outside `[0, 1]`, the horizon is not
    /// positive while events are possible, or the outage bounds are
    /// inverted or negative.
    pub fn validate(&self) {
        for (name, f) in [
            ("death_fraction", self.death_fraction),
            ("outage_fraction", self.outage_fraction),
            ("drift_spike_fraction", self.drift_spike_fraction),
            ("stuck_fraction", self.stuck_fraction),
        ] {
            assert!((0.0..=1.0).contains(&f), "{name} must lie in [0, 1]");
        }
        if !self.is_quiet() {
            assert!(self.horizon > 0.0, "horizon must be positive");
        }
        assert!(
            self.outage_min_secs >= 0.0 && self.outage_min_secs <= self.outage_max_secs,
            "outage bounds must satisfy 0 <= min <= max"
        );
        assert!(
            self.drift_spike_max_ppm >= 0.0,
            "drift spike magnitude must be non-negative"
        );
    }
}

/// A time-ordered, replayable campaign of [`FaultEvent`]s.
///
/// Generated deterministically from `(node_count, config, seed)` — the
/// same inputs always yield the same plan, so chaos runs are exactly
/// reproducible. Consumed via [`take_due`](Self::take_due) as simulation
/// time advances.
///
/// # Examples
///
/// ```
/// use sid_net::fault::{FaultPlan, FaultPlanConfig};
///
/// let cfg = FaultPlanConfig {
///     death_fraction: 0.5,
///     ..FaultPlanConfig::default()
/// };
/// let mut plan = FaultPlan::generate(50, &cfg, 7);
/// assert_eq!(plan.events().len(), FaultPlan::generate(50, &cfg, 7).events().len());
/// let early = plan.take_due(150.0).len();
/// let late = plan.take_due(f64::INFINITY).len();
/// assert_eq!(early + late, plan.events().len());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// A plan with no events.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from explicit events (sorted by time, ties by node).
    ///
    /// # Panics
    ///
    /// Panics if any event time is NaN.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        assert!(
            events.iter().all(|e| !e.time.is_nan()),
            "fault times must not be NaN"
        );
        events.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.node.cmp(&b.node)));
        FaultPlan { events, cursor: 0 }
    }

    /// Draws a plan for `node_count` nodes. Deterministic in
    /// `(node_count, config, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`FaultPlanConfig::validate`]).
    pub fn generate(node_count: usize, config: &FaultPlanConfig, seed: u64) -> Self {
        config.validate();
        if config.is_quiet() {
            return Self::empty();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for node in 0..node_count as u32 {
            if config.spare == Some(node) {
                continue;
            }
            if config.death_fraction > 0.0 && rng.gen_bool(config.death_fraction) {
                events.push(FaultEvent {
                    time: rng.gen_range(0.0..config.horizon),
                    node,
                    kind: FaultKind::Death,
                });
            }
            if config.outage_fraction > 0.0 && rng.gen_bool(config.outage_fraction) {
                let duration = if config.outage_max_secs > config.outage_min_secs {
                    rng.gen_range(config.outage_min_secs..=config.outage_max_secs)
                } else {
                    config.outage_min_secs
                };
                events.push(FaultEvent {
                    time: rng.gen_range(0.0..config.horizon),
                    node,
                    kind: FaultKind::Outage { duration },
                });
            }
            if config.drift_spike_fraction > 0.0 && rng.gen_bool(config.drift_spike_fraction) {
                let magnitude = rng.gen_range(0.0..=config.drift_spike_max_ppm);
                let extra_ppm = if rng.gen_bool(0.5) { magnitude } else { -magnitude };
                events.push(FaultEvent {
                    time: rng.gen_range(0.0..config.horizon),
                    node,
                    kind: FaultKind::ClockDriftSpike { extra_ppm },
                });
            }
            if config.stuck_fraction > 0.0 && rng.gen_bool(config.stuck_fraction) {
                // Half the failures saturate at the positive rail; the
                // rest freeze near the 1 g resting level.
                let counts = if rng.gen_bool(0.5) { 2047 } else { 1024 };
                events.push(FaultEvent {
                    time: rng.gen_range(0.0..config.horizon),
                    node,
                    kind: FaultKind::StuckAccel { counts },
                });
            }
        }
        Self::from_events(events)
    }

    /// Every event, in firing order (including already-taken ones).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// A fresh (cursor-rewound) plan holding only the events `keep`
    /// accepts, in the same firing order. Shrinkers use this to prune a
    /// failing campaign event-by-event while preserving the rest of the
    /// schedule exactly.
    pub fn filtered(&self, mut keep: impl FnMut(usize, &FaultEvent) -> bool) -> Self {
        let events = self
            .events
            .iter()
            .enumerate()
            .filter(|(i, e)| keep(*i, e))
            .map(|(_, e)| *e)
            .collect();
        FaultPlan { events, cursor: 0 }
    }

    /// A fresh plan with every event scheduled before `horizon` seconds,
    /// for shrinking a campaign alongside a shortened run.
    pub fn truncated(&self, horizon: f64) -> Self {
        self.filtered(|_, e| e.time < horizon)
    }

    /// Events not yet taken.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// The due time of the next untaken event, if any. Event-driven
    /// drivers use this to wake exactly when the next injection is due
    /// instead of polling [`take_due`](Self::take_due) every tick.
    pub fn next_time(&self) -> Option<f64> {
        self.events.get(self.cursor).map(|e| e.time)
    }

    /// Whether the plan holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Inserts one more event in time order. An event scheduled earlier
    /// than an already-taken time fires on the next [`take_due`](Self::take_due).
    ///
    /// # Panics
    ///
    /// Panics if the event time is NaN.
    pub fn push(&mut self, event: FaultEvent) {
        assert!(!event.time.is_nan(), "fault times must not be NaN");
        let idx = self
            .events
            .partition_point(|e| e.time.total_cmp(&event.time).is_le())
            .max(self.cursor);
        self.events.insert(idx, event);
    }

    /// Rewinds the consumption cursor for a fresh replay.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// Returns (and consumes) every event with `time <= now`, in order.
    pub fn take_due(&mut self, now: f64) -> &[FaultEvent] {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].time <= now {
            self.cursor += 1;
        }
        &self.events[start..self.cursor]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_channel_never_loses() {
        let ge = GilbertElliott::disabled();
        let mut state = BurstState::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(!state.step(&ge, &mut rng));
            assert!(!state.in_burst());
        }
    }

    #[test]
    fn burst_loss_matches_steady_state() {
        let ge = GilbertElliott::sea_surface(0.6);
        ge.validate();
        let mut state = BurstState::new();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let lost = (0..n).filter(|_| state.step(&ge, &mut rng)).count();
        let rate = lost as f64 / n as f64;
        let expected = ge.average_loss();
        assert!(
            (rate - expected).abs() < 0.01,
            "empirical {rate} vs stationary {expected}"
        );
    }

    #[test]
    fn losses_arrive_in_bursts() {
        // Runs of consecutive losses must be far longer than an i.i.d.
        // channel of the same average loss would produce.
        let ge = GilbertElliott::sea_surface(1.0);
        let mut state = BurstState::new();
        let mut rng = StdRng::seed_from_u64(3);
        let outcomes: Vec<bool> = (0..100_000).map(|_| state.step(&ge, &mut rng)).collect();
        let mut runs = Vec::new();
        let mut run = 0usize;
        for &lost in &outcomes {
            if lost {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
        }
        if run > 0 {
            runs.push(run);
        }
        let mean_run = runs.iter().sum::<usize>() as f64 / runs.len() as f64;
        // i.i.d. at loss p has mean run 1/(1-p); here p ≈ average_loss.
        let iid_run = 1.0 / (1.0 - ge.average_loss());
        assert!(
            mean_run > 2.0 * iid_run,
            "mean loss run {mean_run} vs i.i.d. {iid_run}"
        );
    }

    #[test]
    fn severity_zero_is_disabled() {
        assert!(GilbertElliott::sea_surface(0.0).is_disabled());
        assert!(!GilbertElliott::sea_surface(0.1).is_disabled());
    }

    #[test]
    fn average_loss_grows_with_severity() {
        let mut prev = -1.0;
        for k in 0..=10 {
            let loss = GilbertElliott::sea_surface(k as f64 / 10.0).average_loss();
            assert!(loss > prev, "severity {k}: {loss} <= {prev}");
            prev = loss;
        }
    }

    #[test]
    fn plan_generation_is_deterministic() {
        let cfg = FaultPlanConfig {
            death_fraction: 0.3,
            outage_fraction: 0.3,
            drift_spike_fraction: 0.2,
            stuck_fraction: 0.2,
            ..FaultPlanConfig::default()
        };
        let a = FaultPlan::generate(40, &cfg, 99);
        let b = FaultPlan::generate(40, &cfg, 99);
        assert_eq!(a, b);
        let c = FaultPlan::generate(40, &cfg, 100);
        assert_ne!(a, c, "distinct seeds should give distinct plans");
    }

    #[test]
    fn plan_events_are_time_ordered_and_within_horizon() {
        let cfg = FaultPlanConfig {
            death_fraction: 0.5,
            outage_fraction: 0.5,
            horizon: 120.0,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(60, &cfg, 5);
        assert!(!plan.is_empty());
        for w in plan.events().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for e in plan.events() {
            assert!((0.0..120.0).contains(&e.time));
        }
    }

    #[test]
    fn spare_node_is_never_killed() {
        let cfg = FaultPlanConfig {
            death_fraction: 1.0,
            outage_fraction: 1.0,
            spare: Some(0),
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(20, &cfg, 11);
        assert!(plan.events().iter().all(|e| e.node != 0));
        // Every other node got both events.
        assert_eq!(plan.events().len(), 19 * 2);
    }

    #[test]
    fn quiet_config_yields_empty_plan() {
        let plan = FaultPlan::generate(100, &FaultPlanConfig::default(), 1);
        assert!(plan.is_empty());
    }

    #[test]
    fn take_due_consumes_in_order() {
        let mut plan = FaultPlan::from_events(vec![
            FaultEvent {
                time: 10.0,
                node: 1,
                kind: FaultKind::Death,
            },
            FaultEvent {
                time: 5.0,
                node: 2,
                kind: FaultKind::Outage { duration: 30.0 },
            },
            FaultEvent {
                time: 20.0,
                node: 3,
                kind: FaultKind::StuckAccel { counts: 2047 },
            },
        ]);
        let first = plan.take_due(10.0).to_vec();
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].node, 2);
        assert_eq!(first[1].node, 1);
        assert_eq!(plan.remaining(), 1);
        assert!(plan.take_due(15.0).is_empty());
        assert_eq!(plan.take_due(20.0).len(), 1);
        plan.reset();
        assert_eq!(plan.remaining(), 3);
    }

    #[test]
    fn push_keeps_order_even_past_cursor() {
        let mut plan = FaultPlan::from_events(vec![FaultEvent {
            time: 10.0,
            node: 1,
            kind: FaultKind::Death,
        }]);
        assert_eq!(plan.take_due(10.0).len(), 1);
        // Scheduled "in the past": must still fire on the next take.
        plan.push(FaultEvent {
            time: 3.0,
            node: 2,
            kind: FaultKind::Death,
        });
        assert_eq!(plan.take_due(10.0).len(), 1);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn generate_rejects_bad_fraction() {
        let cfg = FaultPlanConfig {
            death_fraction: 1.5,
            ..FaultPlanConfig::default()
        };
        FaultPlan::generate(10, &cfg, 1);
    }

    #[test]
    fn chaos_preset_scales_with_intensity() {
        let quiet = FaultPlanConfig::chaos(0.0, 120.0);
        assert!(quiet.is_quiet());
        let full = FaultPlanConfig::chaos(1.0, 120.0);
        full.validate();
        assert!((full.death_fraction - 0.15).abs() < 1e-12);
        assert!((full.horizon - 120.0).abs() < 1e-12);
        // Out-of-range intensities clamp instead of producing an invalid
        // config the fuzzer would trip over.
        FaultPlanConfig::chaos(7.0, 60.0).validate();
        let half = FaultPlanConfig::chaos(0.5, 120.0);
        assert!(half.death_fraction < full.death_fraction);
    }

    #[test]
    fn filtered_and_truncated_preserve_order_and_rewind() {
        let cfg = FaultPlanConfig {
            death_fraction: 0.6,
            outage_fraction: 0.6,
            ..FaultPlanConfig::default()
        };
        let mut plan = FaultPlan::generate(40, &cfg, 11);
        assert!(plan.events().len() > 4);
        let total = plan.events().len();
        // Consume part of the plan, then derive pruned copies: they must
        // start from a rewound cursor.
        plan.take_due(150.0);
        let evens = plan.filtered(|i, _| i % 2 == 0);
        assert_eq!(evens.events().len(), total.div_ceil(2));
        assert_eq!(evens.remaining(), evens.events().len());
        assert!(evens
            .events()
            .windows(2)
            .all(|w| w[0].time <= w[1].time));
        let early = plan.truncated(100.0);
        assert!(early.events().iter().all(|e| e.time < 100.0));
        let late_count = plan.events().iter().filter(|e| e.time >= 100.0).count();
        assert_eq!(early.events().len() + late_count, total);
    }
}
