//! Region sharding: a deterministic spatial partition of a topology.
//!
//! A [`ShardMap`] splits a deployment into `K` contiguous regions along
//! the same cell grid the spatial-hash neighbor index uses (cell size =
//! radio range, see [`crate::topology`]). Shards are the unit of
//! concurrency for region-parallel drivers: pure per-node work fans out
//! by shard, while cross-shard radio traffic is merged back into one
//! deterministic delivery order by the lane-partitioned scheduler in
//! [`crate::sim`]. The partition is a pure function of node positions,
//! radio range, and `K` — no RNG — so every run over the same topology
//! gets the same map.

use crate::topology::Topology;

/// A deterministic assignment of every node to one of `K` spatial shards.
///
/// Nodes are bucketed by spatial-hash cell column (`floor(x / radio
/// range)` — the exact cell key the neighbor index uses), columns are
/// walked in ascending order, and contiguous column runs are grouped so
/// each shard carries roughly `n / K` nodes. Radio neighbors therefore
/// land either in the same shard or in the adjacent one; everything
/// further apart cannot exchange single-hop frames at all.
///
/// # Examples
///
/// ```
/// use sid_net::{ShardMap, Topology};
///
/// let topo = Topology::grid(4, 8, 25.0, 30.0);
/// let map = ShardMap::from_topology(&topo, 4);
/// assert_eq!(map.shards(), 4);
/// assert_eq!(map.len(), 32);
/// // Every node is assigned, and shards are balanced on a uniform grid.
/// assert_eq!(map.counts().iter().sum::<usize>(), 32);
/// assert!(map.counts().iter().all(|&c| c == 8));
/// // Shard indices are monotone in x: region boundaries are vertical.
/// let left = map.shard_of(0);
/// let right = map.shard_of(7);
/// assert!(left < right);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shard_of: Vec<usize>,
    shards: usize,
}

impl ShardMap {
    /// Builds the `K`-shard partition of `topology`.
    ///
    /// `shards` is clamped to at least 1; asking for more shards than
    /// there are occupied cell columns leaves the surplus shards empty
    /// (the map still reports `shards()` lanes so schedulers can size
    /// themselves from it).
    pub fn from_topology(topology: &Topology, shards: usize) -> Self {
        let shards = shards.max(1);
        let n = topology.len();
        let range = topology.radio_range();
        // Cell key: identical to the spatial-hash column key.
        let col = |x: f64| (x / range).floor() as i64;
        let mut cols: Vec<i64> = topology
            .node_ids()
            .map(|id| col(topology.position(id).x))
            .collect();
        let mut distinct = cols.clone();
        distinct.sort_unstable();
        distinct.dedup();
        // Count nodes per occupied column, in ascending column order.
        let col_index = |c: i64| distinct.binary_search(&c).expect("occupied column");
        let mut per_col = vec![0usize; distinct.len()];
        for &c in &cols {
            per_col[col_index(c)] += 1;
        }
        // Quantile grouping: a column joins the shard its cumulative
        // node count falls into, so contiguous column runs carry close
        // to `n / K` nodes each. `cum_before` is nondecreasing, hence
        // shard indices are monotone in column order (contiguity), and
        // `cum_before < n` keeps every index below `shards`.
        let mut shard_of_col = vec![0usize; distinct.len()];
        let mut cum_before = 0usize;
        for (ci, &count) in per_col.iter().enumerate() {
            shard_of_col[ci] = (cum_before * shards).checked_div(n).unwrap_or(0);
            cum_before += count;
        }
        for c in cols.iter_mut() {
            *c = shard_of_col[col_index(*c)] as i64;
        }
        ShardMap {
            shard_of: cols.into_iter().map(|s| s as usize).collect(),
            shards,
        }
    }

    /// The single-shard (unsharded) map over `n` nodes.
    pub fn single(n: usize) -> Self {
        ShardMap {
            shard_of: vec![0; n],
            shards: 1,
        }
    }

    /// Number of shards (lanes), including any empty ones.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of nodes covered by the map.
    pub fn len(&self) -> usize {
        self.shard_of.len()
    }

    /// Whether the map covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.shard_of.is_empty()
    }

    /// The shard node `idx` belongs to.
    pub fn shard_of(&self, idx: usize) -> usize {
        self.shard_of[idx]
    }

    /// Node count per shard.
    pub fn counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shards];
        for &s in &self.shard_of {
            counts[s] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_covers_everything() {
        let topo = Topology::grid(3, 3, 25.0, 30.0);
        let map = ShardMap::from_topology(&topo, 1);
        assert_eq!(map.shards(), 1);
        assert_eq!(map.counts(), vec![9]);
        assert!((0..9).all(|i| map.shard_of(i) == 0));
    }

    #[test]
    fn partition_is_contiguous_in_x() {
        let topo = Topology::grid(6, 12, 25.0, 30.0);
        let map = ShardMap::from_topology(&topo, 3);
        // Walking nodes by x, shard indices never decrease.
        let mut by_x: Vec<usize> = (0..topo.len()).collect();
        by_x.sort_by(|&a, &b| {
            topo.position(a.into())
                .x
                .total_cmp(&topo.position(b.into()).x)
        });
        let shards: Vec<usize> = by_x.iter().map(|&i| map.shard_of(i)).collect();
        assert!(shards.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(map.counts().iter().sum::<usize>(), 72);
        assert!(map.counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn more_shards_than_columns_leaves_empties() {
        // 1 column of cells: everything lands in shard 0.
        let topo = Topology::grid(4, 1, 25.0, 30.0);
        let map = ShardMap::from_topology(&topo, 4);
        assert_eq!(map.shards(), 4);
        assert_eq!(map.counts()[0], 4);
        assert_eq!(map.counts()[1..], [0, 0, 0]);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let topo = Topology::grid(2, 2, 25.0, 30.0);
        let map = ShardMap::from_topology(&topo, 0);
        assert_eq!(map.shards(), 1);
    }

    #[test]
    fn partition_is_deterministic() {
        let topo = Topology::grid(5, 9, 25.0, 30.0);
        let a = ShardMap::from_topology(&topo, 4);
        let b = ShardMap::from_topology(&topo, 4);
        assert_eq!(a, b);
    }
}
