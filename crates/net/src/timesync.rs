//! Network time synchronisation error model.
//!
//! The paper assumes nodes "are time-synchronized before deployment" and
//! notes "it is not too costly to run synch and localization to reach
//! certain precision required by our application". We model the *residual*
//! error of a flooding sync protocol (FTSP-style): a reference node
//! broadcasts, each hop of re-broadcast adds independent jitter, so a
//! node's post-sync offset error grows with the square root of its hop
//! distance from the reference.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::topology::Topology;
use crate::NodeId;

/// Parameters of the sync-protocol error model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncModel {
    /// Per-hop timestamping jitter, standard deviation in seconds.
    pub per_hop_sigma: f64,
}

impl SyncModel {
    /// An FTSP-class protocol: ~1.5 ms of error per hop (generous for
    /// 802.15.4 hardware; the paper's application tolerates tens of ms).
    pub fn ftsp_class() -> Self {
        SyncModel {
            per_hop_sigma: 0.0015,
        }
    }

    /// Perfect synchronisation.
    pub fn perfect() -> Self {
        SyncModel { per_hop_sigma: 0.0 }
    }

    /// Standard deviation of the offset error at `hops` hops from the
    /// reference: `σ·√hops` (independent per-hop jitter accumulates in
    /// variance).
    pub fn sigma_at_hops(&self, hops: u16) -> f64 {
        self.per_hop_sigma * (hops as f64).sqrt()
    }

    /// Runs one sync round over the topology from `reference`, returning
    /// each node's residual clock offset (s). Unreachable nodes keep an
    /// offset of `f64::INFINITY` to make the failure loud.
    pub fn run_round<R: Rng + ?Sized>(
        &self,
        topology: &Topology,
        reference: NodeId,
        rng: &mut R,
    ) -> Vec<f64> {
        let hops = topology.hops_from(reference);
        hops.iter()
            .map(|&h| {
                if h == u16::MAX {
                    f64::INFINITY
                } else if h == 0 {
                    0.0
                } else {
                    let sigma = self.sigma_at_hops(h);
                    gaussian(rng) * sigma
                }
            })
            .collect()
    }
}

impl Default for SyncModel {
    fn default() -> Self {
        Self::ftsp_class()
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_sync_has_zero_offsets() {
        let topo = Topology::grid(3, 3, 25.0, 30.0);
        let mut rng = StdRng::seed_from_u64(1);
        let offsets = SyncModel::perfect().run_round(&topo, NodeId::new(0), &mut rng);
        assert!(offsets.iter().all(|&o| o == 0.0));
    }

    #[test]
    fn reference_node_is_exact() {
        let topo = Topology::grid(3, 3, 25.0, 30.0);
        let mut rng = StdRng::seed_from_u64(2);
        let offsets = SyncModel::ftsp_class().run_round(&topo, NodeId::new(4), &mut rng);
        assert_eq!(offsets[4], 0.0);
    }

    #[test]
    fn error_grows_with_hops() {
        let topo = Topology::grid(1, 20, 25.0, 30.0); // a 20-node line
        let model = SyncModel::ftsp_class();
        let mut rng = StdRng::seed_from_u64(3);
        // Average |offset| over many rounds at hop 1 vs hop 16.
        let mut near = 0.0;
        let mut far = 0.0;
        let rounds = 400;
        for _ in 0..rounds {
            let offs = model.run_round(&topo, NodeId::new(0), &mut rng);
            near += offs[1].abs();
            far += offs[16].abs();
        }
        assert!(far / near > 2.0, "far/near = {}", far / near);
        // √16 = 4: ratio should be near 4.
        assert!((far / near - 4.0).abs() < 1.0);
    }

    #[test]
    fn sigma_formula() {
        let m = SyncModel { per_hop_sigma: 0.002 };
        assert_eq!(m.sigma_at_hops(0), 0.0);
        assert_eq!(m.sigma_at_hops(1), 0.002);
        assert!((m.sigma_at_hops(4) - 0.004).abs() < 1e-12);
    }

    #[test]
    fn unreachable_nodes_get_infinite_offset() {
        use crate::topology::Position;
        let topo = Topology::from_positions(
            vec![Position::new(0.0, 0.0), Position::new(1e6, 0.0)],
            10.0,
        );
        let mut rng = StdRng::seed_from_u64(4);
        let offsets = SyncModel::ftsp_class().run_round(&topo, NodeId::new(0), &mut rng);
        assert!(offsets[1].is_infinite());
    }

    #[test]
    fn residuals_are_millisecond_scale() {
        // The speed estimator needs timestamp errors ≪ inter-node wave
        // travel times (seconds); verify the model delivers ms-scale error
        // across a 6-hop cluster.
        let topo = Topology::grid(7, 7, 25.0, 30.0);
        let mut rng = StdRng::seed_from_u64(5);
        let offsets = SyncModel::ftsp_class().run_round(&topo, NodeId::new(24), &mut rng);
        for &o in &offsets {
            assert!(o.abs() < 0.05, "offset {o}");
        }
    }
}
