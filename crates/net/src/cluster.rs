//! Static cells and on-demand temporary clusters (paper Section IV-C).
//!
//! The deployment is partitioned into static "cells" after deployment;
//! when a node raises an alarm it additionally forms a *temporary cluster*
//! of everything within N hops (N = 6 in the paper's algorithm) and
//! becomes its head until either enough corroborating reports arrive or a
//! timeout cancels it as a false alarm.

use serde::{Deserialize, Serialize};

use crate::topology::Topology;
use crate::{CellId, NodeId};

/// Static partition of a grid deployment into rectangular cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticCells {
    cell_of: Vec<CellId>,
    heads: Vec<NodeId>,
    cell_rows: usize,
    cell_cols: usize,
}

impl StaticCells {
    /// Partitions a grid topology into cells of `cell_rows × cell_cols`
    /// nodes. The node closest to each cell's centroid becomes the static
    /// cell head.
    ///
    /// # Panics
    ///
    /// Panics if the topology was not grid-built or the cell shape is
    /// degenerate.
    pub fn partition(topology: &Topology, cell_rows: usize, cell_cols: usize) -> Self {
        assert!(cell_rows > 0 && cell_cols > 0, "cell shape must be non-zero");
        let rows = topology
            .grid_rows()
            .expect("static cells require a grid topology");
        let cols = topology.grid_cols().expect("grid");
        let cells_per_row = cols.div_ceil(cell_cols);
        let mut cell_of = Vec::with_capacity(topology.len());
        for id in topology.node_ids() {
            let r = topology.row_of(id).expect("grid") / cell_rows;
            let c = topology.col_of(id).expect("grid") / cell_cols;
            cell_of.push(CellId::from(r * cells_per_row + c));
        }
        let n_cells = rows.div_ceil(cell_rows) * cells_per_row;
        // Head = member whose (row, col) is closest to the cell's mean.
        let mut heads = Vec::with_capacity(n_cells);
        for cell in 0..n_cells {
            let members: Vec<NodeId> = topology
                .node_ids()
                .filter(|n| cell_of[n.index()].index() == cell)
                .collect();
            let mean_r = members
                .iter()
                .map(|n| topology.row_of(*n).expect("grid") as f64)
                .sum::<f64>()
                / members.len().max(1) as f64;
            let mean_c = members
                .iter()
                .map(|n| topology.col_of(*n).expect("grid") as f64)
                .sum::<f64>()
                / members.len().max(1) as f64;
            let head = members
                .iter()
                .copied()
                .min_by(|a, b| {
                    let da = (topology.row_of(*a).expect("grid") as f64 - mean_r).powi(2)
                        + (topology.col_of(*a).expect("grid") as f64 - mean_c).powi(2);
                    let db = (topology.row_of(*b).expect("grid") as f64 - mean_r).powi(2)
                        + (topology.col_of(*b).expect("grid") as f64 - mean_c).powi(2);
                    da.total_cmp(&db)
                })
                .unwrap_or(NodeId::new(0));
            heads.push(head);
        }
        StaticCells {
            cell_of,
            heads,
            cell_rows,
            cell_cols,
        }
    }

    /// Cell of a node.
    pub fn cell_of(&self, node: NodeId) -> CellId {
        self.cell_of[node.index()]
    }

    /// Static head of a cell.
    pub fn head_of(&self, cell: CellId) -> NodeId {
        self.heads[cell.index()]
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.heads.len()
    }

    /// All members of a cell.
    pub fn members(&self, cell: CellId) -> Vec<NodeId> {
        self.cell_of
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == cell)
            .map(|(i, _)| NodeId::from(i))
            .collect()
    }
}

/// Lifecycle state of a temporary cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TempClusterState {
    /// Waiting for corroborating reports.
    Collecting,
    /// Enough correlated reports: detection confirmed and forwarded.
    Confirmed,
    /// Timed out without corroboration: cancelled as a false alarm.
    Cancelled,
}

/// A temporary cluster formed around an alarming node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TempCluster {
    head: NodeId,
    members: Vec<NodeId>,
    formed_at: f64,
    timeout: f64,
    state: TempClusterState,
}

impl TempCluster {
    /// Forms a cluster of everything within `max_hops` of `head` at time
    /// `now`, with the given corroboration `timeout` in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is not positive.
    pub fn form(topology: &Topology, head: NodeId, max_hops: u16, now: f64, timeout: f64) -> Self {
        assert!(timeout > 0.0, "timeout must be positive");
        TempCluster {
            head,
            members: topology.nodes_within_hops(head, max_hops),
            formed_at: now,
            timeout,
            state: TempClusterState::Collecting,
        }
    }

    /// The initiating head node.
    pub fn head(&self) -> NodeId {
        self.head
    }

    /// All members (head included).
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Whether `node` belongs to this cluster.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Formation time.
    pub fn formed_at(&self) -> f64 {
        self.formed_at
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TempClusterState {
        self.state
    }

    /// Whether the corroboration window has expired at `now`.
    pub fn is_expired(&self, now: f64) -> bool {
        now >= self.formed_at + self.timeout
    }

    /// Marks the cluster confirmed (correlated reports arrived in time).
    pub fn confirm(&mut self) {
        self.state = TempClusterState::Confirmed;
    }

    /// Marks the cluster cancelled (timeout without corroboration).
    pub fn cancel(&mut self) {
        self.state = TempClusterState::Cancelled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_assigns_every_node() {
        let topo = Topology::grid(6, 6, 25.0, 30.0);
        let cells = StaticCells::partition(&topo, 3, 3);
        assert_eq!(cells.cell_count(), 4);
        for id in topo.node_ids() {
            assert!(cells.cell_of(id).index() < 4);
        }
        // 36 nodes, 4 cells of 9.
        for c in 0..4 {
            assert_eq!(cells.members(CellId::from(c)).len(), 9);
        }
    }

    #[test]
    fn ragged_partition_handles_remainders() {
        let topo = Topology::grid(5, 5, 25.0, 30.0);
        let cells = StaticCells::partition(&topo, 2, 2);
        // ceil(5/2) = 3 cells each way → 9 cells.
        assert_eq!(cells.cell_count(), 9);
        let total: usize = (0..9).map(|c| cells.members(CellId::from(c)).len()).sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn heads_are_central_members() {
        let topo = Topology::grid(6, 6, 25.0, 30.0);
        let cells = StaticCells::partition(&topo, 3, 3);
        for c in 0..cells.cell_count() {
            let cell = CellId::from(c);
            let head = cells.head_of(cell);
            assert!(cells.members(cell).contains(&head));
        }
        // First 3×3 cell: centre node is (1,1) = id 7 on a 6-wide grid.
        assert_eq!(cells.head_of(CellId::from(0)), topo.at_grid(1, 1).unwrap());
    }

    #[test]
    #[should_panic(expected = "static cells require a grid topology")]
    fn partition_rejects_non_grid() {
        use crate::topology::Position;
        let topo = Topology::from_positions(vec![Position::new(0.0, 0.0)], 10.0);
        StaticCells::partition(&topo, 2, 2);
    }

    #[test]
    fn temp_cluster_membership_and_lifecycle() {
        let topo = Topology::grid(5, 5, 25.0, 30.0);
        let head = topo.at_grid(2, 2).unwrap();
        let mut cluster = TempCluster::form(&topo, head, 2, 100.0, 5.0);
        assert_eq!(cluster.head(), head);
        assert!(cluster.contains(head));
        // Manhattan ball radius 2 around the centre of 5×5: 13 nodes.
        assert_eq!(cluster.members().len(), 13);
        assert_eq!(cluster.state(), TempClusterState::Collecting);
        assert!(!cluster.is_expired(104.9));
        assert!(cluster.is_expired(105.0));
        cluster.confirm();
        assert_eq!(cluster.state(), TempClusterState::Confirmed);
        cluster.cancel();
        assert_eq!(cluster.state(), TempClusterState::Cancelled);
    }

    #[test]
    fn six_hop_temp_cluster_default() {
        let topo = Topology::grid(10, 10, 25.0, 30.0);
        let head = topo.at_grid(5, 5).unwrap();
        let cluster = TempCluster::form(&topo, head, 6, 0.0, 10.0);
        // All nodes within Manhattan distance 6 of (5,5) in a 10×10 grid.
        let expected = topo.nodes_within_hops(head, 6).len();
        assert_eq!(cluster.members().len(), expected);
        assert!(expected > 50);
    }

    #[test]
    #[should_panic(expected = "timeout must be positive")]
    fn temp_cluster_rejects_zero_timeout() {
        let topo = Topology::grid(2, 2, 25.0, 30.0);
        TempCluster::form(&topo, NodeId::new(0), 1, 0.0, 0.0);
    }
}
