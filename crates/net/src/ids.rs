//! Identifier newtypes for nodes and clusters.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a sensor node within one deployment.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id.
    pub const fn new(id: u32) -> Self {
        NodeId(id)
    }

    /// The raw id value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// The id as a vector index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl From<u32> for NodeId {
    fn from(i: u32) -> Self {
        NodeId(i)
    }
}

impl From<i32> for NodeId {
    /// Convenience for literal ids in examples and tests.
    ///
    /// # Panics
    ///
    /// Panics if `i` is negative.
    fn from(i: i32) -> Self {
        assert!(i >= 0, "node id must be non-negative");
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a static cluster cell.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CellId(u32);

impl CellId {
    /// Creates a cell id.
    pub const fn new(id: u32) -> Self {
        CellId(id)
    }

    /// The raw id value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// The id as a vector index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for CellId {
    fn from(i: usize) -> Self {
        CellId(i as u32)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_conversions() {
        let id = NodeId::from(7usize);
        assert_eq!(id.value(), 7);
        assert_eq!(id.index(), 7);
        assert_eq!(NodeId::from(7u32), id);
        assert_eq!(id.to_string(), "n7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        assert_eq!(set.len(), 1);
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn cell_id_basics() {
        let c = CellId::from(3usize);
        assert_eq!(c.index(), 3);
        assert_eq!(c.to_string(), "cell3");
    }
}
