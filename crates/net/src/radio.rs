//! Lossy radio link model.
//!
//! The paper motivates cooperative detection partly with "wireless
//! communication errors \[20\] and possible network congestions \[19\]": a
//! positive node report may simply never arrive. The model here is a disc
//! radio with independent per-transmission loss and latency jitter —
//! enough to reproduce missing/late reports at the cluster head.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-link radio behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioModel {
    /// Probability an individual transmission attempt is lost.
    pub loss_probability: f64,
    /// Fixed per-hop latency (s): MAC + transmission time.
    pub base_latency: f64,
    /// Uniform extra latency jitter (s): contention/backoff.
    pub latency_jitter: f64,
    /// MAC-level retransmissions per hop (802.15.4 allows up to 3): a hop
    /// fails only when the original attempt *and* every retry are lost.
    /// Each extra attempt adds `base_latency` to the hop's delay.
    pub mac_retries: u8,
}

impl RadioModel {
    /// A reliable, fast radio (no loss, 5 ms per hop).
    pub fn reliable() -> Self {
        RadioModel {
            loss_probability: 0.0,
            base_latency: 0.005,
            latency_jitter: 0.0,
            mac_retries: 0,
        }
    }

    /// A realistic 802.15.4-class sea-surface link: 10 % per-attempt loss
    /// with one MAC retry (1 % effective per-hop loss), 10 ms base
    /// latency, up to 30 ms jitter.
    pub fn lossy() -> Self {
        RadioModel {
            loss_probability: 0.10,
            base_latency: 0.010,
            latency_jitter: 0.030,
            mac_retries: 1,
        }
    }

    /// A harsh link with no MAC recovery: 10 % per-hop loss, as a stress
    /// model for the cooperative-detection arguments.
    pub fn lossy_no_retry() -> Self {
        RadioModel {
            mac_retries: 0,
            ..Self::lossy()
        }
    }

    /// Effective per-hop loss probability after MAC retries.
    pub fn effective_loss(&self) -> f64 {
        self.loss_probability.powi(1 + self.mac_retries as i32)
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `loss_probability` is outside `[0, 1]` or latencies are
    /// negative.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.loss_probability),
            "loss probability must lie in [0, 1]"
        );
        assert!(self.base_latency >= 0.0, "latency must be non-negative");
        assert!(self.latency_jitter >= 0.0, "jitter must be non-negative");
    }

    /// Attempts one hop (original transmission plus MAC retries):
    /// `Some(latency)` on success, `None` if every attempt is lost.
    pub fn try_transmit<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<f64> {
        let mut latency = 0.0;
        for attempt in 0..=self.mac_retries {
            latency += self.base_latency;
            if self.latency_jitter > 0.0 {
                latency += rng.gen_range(0.0..self.latency_jitter);
            }
            if !(self.loss_probability > 0.0) || rng.gen::<f64>() >= self.loss_probability {
                return Some(latency);
            }
            let _ = attempt;
        }
        None
    }

    /// Probability a packet survives `hops` independent hops (after MAC
    /// retries).
    pub fn multi_hop_delivery_probability(&self, hops: u16) -> f64 {
        (1.0 - self.effective_loss()).powi(hops as i32)
    }
}

impl Default for RadioModel {
    fn default() -> Self {
        Self::lossy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reliable_radio_always_delivers() {
        let r = RadioModel::reliable();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let lat = r.try_transmit(&mut rng);
            assert_eq!(lat, Some(0.005));
        }
    }

    #[test]
    fn lossy_radio_drops_about_the_right_fraction() {
        let r = RadioModel::lossy_no_retry();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let delivered = (0..n).filter(|_| r.try_transmit(&mut rng).is_some()).count();
        let rate = delivered as f64 / n as f64;
        assert!((rate - 0.9).abs() < 0.01, "delivery rate {rate}");
    }

    #[test]
    fn latency_within_bounds() {
        let r = RadioModel::lossy();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            if let Some(lat) = r.try_transmit(&mut rng) {
                // One attempt: [0.01, 0.04); a MAC retry doubles the ceiling.
                assert!((0.010..0.080).contains(&lat));
            }
        }
    }

    #[test]
    fn multi_hop_probability_compounds() {
        let r = RadioModel {
            loss_probability: 0.1,
            base_latency: 0.0,
            latency_jitter: 0.0,
            mac_retries: 0,
        };
        assert!((r.multi_hop_delivery_probability(1) - 0.9).abs() < 1e-12);
        assert!((r.multi_hop_delivery_probability(3) - 0.729).abs() < 1e-12);
        assert_eq!(r.multi_hop_delivery_probability(0), 1.0);
    }

    #[test]
    fn mac_retry_recovers_most_losses() {
        let r = RadioModel::lossy(); // 10 % per attempt, 1 retry
        let mut rng = StdRng::seed_from_u64(21);
        let n = 50_000;
        let delivered = (0..n).filter(|_| r.try_transmit(&mut rng).is_some()).count();
        let rate = delivered as f64 / n as f64;
        assert!((rate - 0.99).abs() < 0.005, "delivery rate {rate}");
        assert!((r.effective_loss() - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "loss probability must lie in [0, 1]")]
    fn validate_rejects_bad_loss() {
        RadioModel {
            loss_probability: 1.5,
            base_latency: 0.0,
            latency_jitter: 0.0,
            mac_retries: 0,
        }
        .validate();
    }
}
