//! Localization middleware (paper Section IV-A: "some middleware services
//! should be considered, such as the location of nodes, time
//! synchronization, and routing infrastructure").
//!
//! The paper's deployment assigns positions manually; a drifting
//! re-deployment would instead range against a few anchor buoys (the
//! authors' own UDB/LDB beacon work, refs \[18\]\[21\]). This module supplies
//! that service: noisy range measurements to known anchors solved by
//! Gauss–Newton trilateration, with the residual reported so callers can
//! gate on localization quality.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::topology::Position;

/// One range measurement to an anchor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeMeasurement {
    /// Anchor position (known).
    pub anchor: Position,
    /// Measured distance to the anchor (m), noise included.
    pub range: f64,
}

/// Result of a localization solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalizationFix {
    /// Estimated position.
    pub position: Position,
    /// Root-mean-square range residual at the solution (m): a quality
    /// gate (large residual ⇒ inconsistent ranges).
    pub rms_residual: f64,
    /// Gauss–Newton iterations used.
    pub iterations: usize,
}

/// Errors from the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LocalizationError {
    /// Fewer than three ranges: the 2-D fix is under-determined.
    NotEnoughAnchors,
    /// The normal equations were singular (e.g. collinear anchors with an
    /// ambiguous mirror solution).
    Degenerate,
}

impl std::fmt::Display for LocalizationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalizationError::NotEnoughAnchors => {
                write!(f, "need at least three anchor ranges")
            }
            LocalizationError::Degenerate => write!(f, "anchor geometry is degenerate"),
        }
    }
}

impl std::error::Error for LocalizationError {}

/// Solves a 2-D position from noisy anchor ranges by Gauss–Newton least
/// squares, starting from the anchor centroid.
///
/// # Errors
///
/// * [`LocalizationError::NotEnoughAnchors`] with fewer than 3 ranges.
/// * [`LocalizationError::Degenerate`] when the anchor geometry leaves
///   the normal equations singular.
///
/// # Examples
///
/// ```
/// use sid_net::localization::{trilaterate, RangeMeasurement};
/// use sid_net::Position;
///
/// let truth = Position::new(30.0, 40.0);
/// let anchors = [
///     Position::new(0.0, 0.0),
///     Position::new(100.0, 0.0),
///     Position::new(0.0, 100.0),
/// ];
/// let ranges: Vec<RangeMeasurement> = anchors
///     .iter()
///     .map(|a| RangeMeasurement { anchor: *a, range: a.distance(&truth) })
///     .collect();
/// let fix = trilaterate(&ranges)?;
/// assert!(fix.position.distance(&truth) < 1e-6);
/// # Ok::<(), sid_net::localization::LocalizationError>(())
/// ```
pub fn trilaterate(ranges: &[RangeMeasurement]) -> Result<LocalizationFix, LocalizationError> {
    if ranges.len() < 3 {
        return Err(LocalizationError::NotEnoughAnchors);
    }
    // Initial guess: anchor centroid.
    let mut x = ranges.iter().map(|r| r.anchor.x).sum::<f64>() / ranges.len() as f64;
    let mut y = ranges.iter().map(|r| r.anchor.y).sum::<f64>() / ranges.len() as f64;
    let mut iterations = 0;
    for _ in 0..50 {
        iterations += 1;
        // Normal equations JᵀJ·δ = Jᵀr for residuals rᵢ = measured − |p−aᵢ|.
        let (mut jtj00, mut jtj01, mut jtj11) = (0.0f64, 0.0f64, 0.0f64);
        let (mut jtr0, mut jtr1) = (0.0f64, 0.0f64);
        for m in ranges {
            let dx = x - m.anchor.x;
            let dy = y - m.anchor.y;
            let dist = dx.hypot(dy).max(1e-9);
            let residual = m.range - dist;
            // ∂dist/∂x = dx/dist; residual derivative is its negative, so
            // the update direction works out to J = (dx, dy)/dist with r.
            let jx = dx / dist;
            let jy = dy / dist;
            jtj00 += jx * jx;
            jtj01 += jx * jy;
            jtj11 += jy * jy;
            jtr0 += jx * residual;
            jtr1 += jy * residual;
        }
        let det = jtj00 * jtj11 - jtj01 * jtj01;
        if det.abs() < 1e-12 {
            return Err(LocalizationError::Degenerate);
        }
        let delta_x = (jtj11 * jtr0 - jtj01 * jtr1) / det;
        let delta_y = (jtj00 * jtr1 - jtj01 * jtr0) / det;
        x += delta_x;
        y += delta_y;
        if delta_x.hypot(delta_y) < 1e-9 {
            break;
        }
    }
    let position = Position::new(x, y);
    let ss: f64 = ranges
        .iter()
        .map(|m| {
            let r = m.range - position.distance(&m.anchor);
            r * r
        })
        .sum();
    Ok(LocalizationFix {
        position,
        rms_residual: (ss / ranges.len() as f64).sqrt(),
        iterations,
    })
}

/// Simulates one localization round: ranges from `truth` to each anchor
/// with Gaussian noise of `sigma` metres, then solves.
///
/// # Errors
///
/// Propagates the solver's errors.
pub fn localize_with_noise<R: Rng + ?Sized>(
    truth: Position,
    anchors: &[Position],
    sigma: f64,
    rng: &mut R,
) -> Result<LocalizationFix, LocalizationError> {
    let gaussian = |rng: &mut R| -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    let ranges: Vec<RangeMeasurement> = anchors
        .iter()
        .map(|a| RangeMeasurement {
            anchor: *a,
            range: (a.distance(&truth) + gaussian(rng) * sigma).max(0.0),
        })
        .collect();
    trilaterate(&ranges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square_anchors() -> Vec<Position> {
        vec![
            Position::new(0.0, 0.0),
            Position::new(200.0, 0.0),
            Position::new(0.0, 200.0),
            Position::new(200.0, 200.0),
        ]
    }

    #[test]
    fn exact_ranges_recover_position() {
        let truth = Position::new(73.0, 121.0);
        let ranges: Vec<RangeMeasurement> = square_anchors()
            .iter()
            .map(|a| RangeMeasurement {
                anchor: *a,
                range: a.distance(&truth),
            })
            .collect();
        let fix = trilaterate(&ranges).unwrap();
        assert!(fix.position.distance(&truth) < 1e-6);
        assert!(fix.rms_residual < 1e-6);
    }

    #[test]
    fn too_few_anchors_rejected() {
        let truth = Position::new(10.0, 10.0);
        let ranges: Vec<RangeMeasurement> = square_anchors()[..2]
            .iter()
            .map(|a| RangeMeasurement {
                anchor: *a,
                range: a.distance(&truth),
            })
            .collect();
        assert_eq!(
            trilaterate(&ranges).unwrap_err(),
            LocalizationError::NotEnoughAnchors
        );
    }

    #[test]
    fn noisy_ranges_stay_metre_scale() {
        // 2 m range noise (the paper's buoy drift scale) on a 200 m anchor
        // square: position error stays a few metres.
        let mut rng = StdRng::seed_from_u64(9);
        let truth = Position::new(88.0, 45.0);
        let mut worst = 0.0f64;
        for _ in 0..50 {
            let fix = localize_with_noise(truth, &square_anchors(), 2.0, &mut rng).unwrap();
            worst = worst.max(fix.position.distance(&truth));
        }
        assert!(worst < 8.0, "worst error {worst}");
    }

    #[test]
    fn residual_flags_inconsistent_ranges() {
        let truth = Position::new(50.0, 50.0);
        let mut ranges: Vec<RangeMeasurement> = square_anchors()
            .iter()
            .map(|a| RangeMeasurement {
                anchor: *a,
                range: a.distance(&truth),
            })
            .collect();
        ranges[0].range += 60.0; // one wildly wrong range
        let fix = trilaterate(&ranges).unwrap();
        assert!(fix.rms_residual > 10.0, "residual {}", fix.rms_residual);
    }

    #[test]
    fn interior_positions_with_collinear_anchors_still_solve() {
        // Three collinear anchors have a mirror ambiguity; Gauss–Newton
        // converges to one of the two reflections, both of which satisfy
        // the ranges. Verify it reports consistency rather than diverging.
        let anchors = [Position::new(0.0, 0.0),
            Position::new(100.0, 0.0),
            Position::new(200.0, 0.0)];
        let truth = Position::new(80.0, 60.0);
        let ranges: Vec<RangeMeasurement> = anchors
            .iter()
            .map(|a| RangeMeasurement {
                anchor: *a,
                range: a.distance(&truth),
            })
            .collect();
        match trilaterate(&ranges) {
            Ok(fix) => {
                // Either the true point or its mirror across the x-axis.
                let mirror = Position::new(truth.x, -truth.y);
                let d = fix
                    .position
                    .distance(&truth)
                    .min(fix.position.distance(&mirror));
                assert!(d < 1e-3 || fix.rms_residual < 1e-3, "fix {fix:?}");
            }
            Err(LocalizationError::Degenerate) => {} // acceptable: flagged
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn solver_iterations_are_bounded() {
        let truth = Position::new(10.0, 190.0);
        let ranges: Vec<RangeMeasurement> = square_anchors()
            .iter()
            .map(|a| RangeMeasurement {
                anchor: *a,
                range: a.distance(&truth),
            })
            .collect();
        let fix = trilaterate(&ranges).unwrap();
        assert!(fix.iterations <= 50);
    }
}
