//! Discrete-event scheduling and message delivery.
//!
//! [`EventScheduler`] is a generic time-ordered queue; [`Network`] combines
//! a [`Topology`], a [`RadioModel`] and a scheduler into the message
//! fabric the detection system runs on: unicast to radio neighbors,
//! neighborhood broadcast, and bounded flooding (the paper's "inform its
//! neighbor nodes within N hops").

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::Rng;
use serde::{Deserialize, Serialize};
use sid_obs::{Event, Obs};

use crate::fault::{BurstState, GilbertElliott};
use crate::radio::RadioModel;
use crate::shard::ShardMap;
use crate::topology::Topology;
use crate::NodeId;

/// A scheduled item.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A generic min-time event queue with stable FIFO ordering for ties.
///
/// # Examples
///
/// ```
/// use sid_net::EventScheduler;
///
/// let mut q = EventScheduler::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop_until(1.5), vec![(1.0, "sooner")]);
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EventScheduler<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> EventScheduler<E> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        EventScheduler {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Time of the next event, if any.
    pub fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pops every event with `time <= until`, in time order.
    pub fn pop_until(&mut self, until: f64) -> Vec<(f64, E)> {
        let mut out = Vec::new();
        while let Some(top) = self.heap.peek() {
            if top.time > until {
                break;
            }
            let s = self.heap.pop().expect("peeked");
            out.push((s.time, s.event));
        }
        out
    }
}

impl<E> Default for EventScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A lane-partitioned min-time queue with one global sequence counter.
///
/// `K` independent lanes (one per region shard, see
/// [`ShardMap`]) each hold a min-heap, but every insert
/// draws its tie-break sequence number from a single shared counter.
/// Popping merges lanes by `(time, seq)`, so the delivered order is
/// *provably identical* to a single [`EventScheduler`] fed the same
/// inserts in the same order: both emit the unique total order on
/// `(time, seq)`, and the shared counter makes `seq` globally unique
/// regardless of which lane an event lands in. A 1-lane scheduler *is*
/// the single-queue behavior; region-parallel drivers use K lanes so
/// shards can enqueue independently and still merge deterministically.
///
/// # Examples
///
/// ```
/// use sid_net::ShardedScheduler;
///
/// let mut q = ShardedScheduler::new(2);
/// q.schedule(1, 2.0, "east");
/// q.schedule(0, 1.0, "west");
/// q.schedule(1, 1.0, "tie-later"); // same time: global FIFO breaks the tie
/// assert_eq!(
///     q.pop_until(5.0),
///     vec![(1.0, "west"), (1.0, "tie-later"), (2.0, "east")]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct ShardedScheduler<E> {
    lanes: Vec<BinaryHeap<Scheduled<E>>>,
    seq: u64,
}

impl<E> ShardedScheduler<E> {
    /// Creates an empty scheduler with `lanes` lanes (clamped to ≥ 1).
    pub fn new(lanes: usize) -> Self {
        ShardedScheduler {
            lanes: (0..lanes.max(1)).map(|_| BinaryHeap::new()).collect(),
            seq: 0,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Schedules `event` on `lane` at absolute time `time`. The sequence
    /// number is drawn from the shared counter, so cross-lane ties keep
    /// global insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or `lane` is out of range.
    pub fn schedule(&mut self, lane: usize, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.lanes[lane].push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Total pending events across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(BinaryHeap::len).sum()
    }

    /// Whether no events are pending on any lane.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(BinaryHeap::is_empty)
    }

    /// Time of the earliest event across all lanes, if any.
    pub fn next_time(&self) -> Option<f64> {
        self.lanes
            .iter()
            .filter_map(|h| h.peek().map(|s| s.time))
            .min_by(f64::total_cmp)
    }

    /// Pops every event with `time <= until`, merged across lanes into
    /// ascending `(time, seq)` order — byte-for-byte the order a single
    /// [`EventScheduler`] would deliver.
    pub fn pop_until(&mut self, until: f64) -> Vec<(f64, E)> {
        let mut due: Vec<Scheduled<E>> = Vec::new();
        for lane in &mut self.lanes {
            while let Some(top) = lane.peek() {
                if top.time > until {
                    break;
                }
                due.push(lane.pop().expect("peeked"));
            }
        }
        // Each lane's run is already sorted; `seq` is globally unique,
        // so this sort is a deterministic total order.
        due.sort_unstable_by(|a, b| a.time.total_cmp(&b.time).then_with(|| a.seq.cmp(&b.seq)));
        due.into_iter().map(|s| (s.time, s.event)).collect()
    }

    /// Re-buckets every in-flight event into a new lane layout, keeping
    /// each event's original `(time, seq)` — pop order is unchanged.
    /// `lane_of` results are clamped into range.
    pub fn relane(&mut self, lanes: usize, mut lane_of: impl FnMut(&E) -> usize) {
        let lanes = lanes.max(1);
        let pending: Vec<Scheduled<E>> = self
            .lanes
            .iter_mut()
            .flat_map(std::mem::take)
            .collect();
        self.lanes = (0..lanes).map(|_| BinaryHeap::new()).collect();
        for s in pending {
            let lane = lane_of(&s.event).min(lanes - 1);
            self.lanes[lane].push(s);
        }
    }
}

impl<E> Default for ShardedScheduler<E> {
    fn default() -> Self {
        Self::new(1)
    }
}

/// A message in flight or delivered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Delivery<M> {
    /// Originating node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Hops travelled.
    pub hops: u16,
    /// The payload.
    pub msg: M,
}

/// Traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// Transmissions attempted (per hop).
    pub transmissions: u64,
    /// Deliveries completed.
    pub delivered: u64,
    /// Packets lost to the radio.
    pub dropped: u64,
    /// Unicast attempts to out-of-range destinations.
    pub out_of_range: u64,
    /// Total seconds frames spent waiting for their sender's radio
    /// (egress congestion).
    pub queueing_delay_total: f64,
    /// Packets lost to the burst-state (Gilbert–Elliott) channel,
    /// a subset of `dropped`.
    pub burst_dropped: u64,
    /// Transmissions suppressed because an endpoint was down, plus
    /// in-flight packets whose destination went down before arrival.
    pub blocked_down: u64,
}

/// Egress serialisation: a node's radio sends one frame at a time, so a
/// burst of transmissions queues — the network congestion the paper cites
/// as a reason positive reports "may not be transmitted back timely".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CongestionModel {
    /// Frames a node can put on the air per second; 0 disables the model
    /// (infinite bandwidth).
    pub frames_per_sec: f64,
}

impl CongestionModel {
    /// No serialisation delay.
    pub fn unlimited() -> Self {
        CongestionModel { frames_per_sec: 0.0 }
    }

    /// An 802.15.4-class radio moving small SID frames: ~50 frames/s.
    pub fn ieee802154() -> Self {
        CongestionModel {
            frames_per_sec: 50.0,
        }
    }
}

impl Default for CongestionModel {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// The message fabric: topology + radio + in-flight queue.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sid_net::{Network, RadioModel, Topology};
///
/// let topo = Topology::grid(2, 3, 25.0, 30.0);
/// let mut net: Network<&str> = Network::new(topo, RadioModel::reliable());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// net.unicast(0.into(), 1.into(), "alarm", 10.0, &mut rng);
/// let delivered = net.poll(11.0);
/// assert_eq!(delivered.len(), 1);
/// assert_eq!(delivered[0].1.msg, "alarm");
/// ```
#[derive(Debug, Clone)]
pub struct Network<M> {
    topology: Topology,
    radio: RadioModel,
    congestion: CongestionModel,
    /// Optional burst-loss channel layered on the i.i.d. radio.
    burst: Option<GilbertElliott>,
    /// Per-origin Gilbert–Elliott chain state. Multi-hop forwards step the
    /// originating sender's chain once per hop: the burst episode models a
    /// time-correlated interference environment around the packet stream's
    /// source region (per-link state would need O(n²) chains for little
    /// extra fidelity at grid scale).
    burst_state: Vec<BurstState>,
    /// Per node: down (dead or in outage) — neither sends, relays, nor
    /// receives.
    node_down: Vec<bool>,
    /// Count of `true` entries in `node_down`, so the per-poll
    /// "anyone down?" check is O(1) instead of an O(n) scan.
    down_count: usize,
    /// Per node: earliest time its radio is free for the next frame.
    egress_free_at: Vec<f64>,
    /// In-flight deliveries, bucketed by destination shard. With the
    /// default single lane this behaves exactly like [`EventScheduler`];
    /// [`set_shards`](Self::set_shards) re-buckets into K lanes whose
    /// merged pop order is provably identical (shared `seq` counter).
    queue: ShardedScheduler<Delivery<M>>,
    /// Destination shard per node (all zeros until `set_shards`).
    lane_of: Vec<usize>,
    stats: NetStats,
    /// Observability sink for drop events (no-op by default).
    obs: Obs,
}

impl<M: Clone> Network<M> {
    /// Creates a network over the given topology and radio, with
    /// unlimited egress bandwidth (no congestion).
    ///
    /// # Panics
    ///
    /// Panics if the radio model is invalid (see [`RadioModel::validate`]).
    pub fn new(topology: Topology, radio: RadioModel) -> Self {
        Self::with_congestion(topology, radio, CongestionModel::unlimited())
    }

    /// Creates a network with an egress-serialisation (congestion) model.
    ///
    /// # Panics
    ///
    /// Panics if the radio model is invalid.
    pub fn with_congestion(
        topology: Topology,
        radio: RadioModel,
        congestion: CongestionModel,
    ) -> Self {
        radio.validate();
        let n = topology.len();
        Network {
            topology,
            radio,
            congestion,
            burst: None,
            burst_state: vec![BurstState::new(); n],
            node_down: vec![false; n],
            down_count: 0,
            egress_free_at: vec![0.0; n],
            queue: ShardedScheduler::new(1),
            lane_of: vec![0; n],
            stats: NetStats::default(),
            obs: Obs::noop(),
        }
    }

    /// Attaches an observability recorder: radio, burst and down-endpoint
    /// losses are journalled as [`Event::RadioDrop`]. The default handle
    /// is the no-op recorder.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Layers a Gilbert–Elliott burst-loss channel on top of the i.i.d.
    /// radio. Passing a [`GilbertElliott::disabled`] model removes the
    /// layer entirely (and costs no RNG draws).
    ///
    /// # Panics
    ///
    /// Panics if the model's probabilities are invalid.
    pub fn set_burst_model(&mut self, model: GilbertElliott) {
        model.validate();
        self.burst = (!model.is_disabled()).then_some(model);
    }

    /// The active burst-loss model, if any.
    pub fn burst_model(&self) -> Option<GilbertElliott> {
        self.burst
    }

    /// Marks a node down (battery death or transient outage) or back up.
    /// A down node neither sends, relays, nor receives; in-flight packets
    /// addressed to it are discarded at delivery time.
    pub fn set_node_down(&mut self, node: NodeId, down: bool) {
        let slot = &mut self.node_down[node.index()];
        if *slot != down {
            *slot = down;
            if down {
                self.down_count += 1;
            } else {
                self.down_count -= 1;
            }
        }
    }

    /// Whether `node` is currently down.
    pub fn is_node_down(&self, node: NodeId) -> bool {
        self.node_down[node.index()]
    }

    fn any_down(&self) -> bool {
        self.down_count > 0
    }

    /// The arrival time of the earliest in-flight packet, if any.
    /// Event-driven drivers use this to [`poll`](Self::poll) only on
    /// ticks with an arrival actually due, instead of every tick.
    pub fn next_arrival(&self) -> Option<f64> {
        self.queue.next_time()
    }

    /// Partitions the delivery queue into one lane per shard of `map`,
    /// bucketing by destination node. In-flight packets are re-bucketed
    /// with their original `(time, seq)` keys, so delivery order — and
    /// therefore the journal — is bit-identical to the unsharded queue;
    /// only the internal storage layout changes. Passing a 1-shard map
    /// restores the single-lane layout.
    ///
    /// # Panics
    ///
    /// Panics if the map does not cover exactly this topology's nodes.
    pub fn set_shards(&mut self, map: &ShardMap) {
        assert_eq!(
            map.len(),
            self.topology.len(),
            "shard map must cover every node"
        );
        self.lane_of = (0..map.len()).map(|i| map.shard_of(i)).collect();
        let lane_of = &self.lane_of;
        self.queue
            .relane(map.shards(), |d: &Delivery<M>| lane_of[d.to.index()]);
    }

    /// Number of delivery lanes (1 unless [`set_shards`](Self::set_shards)
    /// installed a partition).
    pub fn shard_lanes(&self) -> usize {
        self.queue.lanes()
    }

    /// One physical transmission by `sender` at time `now`: steps the
    /// sender's burst chain (when a burst model is set), then the i.i.d.
    /// radio. Returns the hop latency on success.
    fn attempt_hop<R: Rng + ?Sized>(
        &mut self,
        sender: NodeId,
        now: f64,
        rng: &mut R,
    ) -> Option<f64> {
        self.stats.transmissions += 1;
        if let Some(model) = self.burst {
            if self.burst_state[sender.index()].step(&model, rng) {
                self.stats.dropped += 1;
                self.stats.burst_dropped += 1;
                if self.obs.enabled() {
                    self.obs.record(Event::RadioDrop {
                        time: now,
                        node: sender.value(),
                        cause: "burst".to_string(),
                    });
                }
                return None;
            }
        }
        match self.radio.try_transmit(rng) {
            Some(latency) => Some(latency),
            None => {
                self.stats.dropped += 1;
                if self.obs.enabled() {
                    self.obs.record(Event::RadioDrop {
                        time: now,
                        node: sender.value(),
                        cause: "radio".to_string(),
                    });
                }
                None
            }
        }
    }

    /// BFS hop counts from `from` with down nodes excluded (they cannot
    /// relay or receive). Matches [`Topology::hops_from`] exactly when no
    /// node is down.
    fn hops_excluding_down(&self, from: NodeId) -> Vec<u16> {
        let n = self.topology.len();
        let mut hops = vec![u16::MAX; n];
        if self.node_down[from.index()] {
            return hops;
        }
        hops[from.index()] = 0;
        let mut frontier = vec![from];
        let mut depth = 0u16;
        while !frontier.is_empty() && depth < u16::MAX {
            depth += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.topology.neighbors(u) {
                    if self.node_down[v.index()] || hops[v.index()] != u16::MAX {
                        continue;
                    }
                    hops[v.index()] = depth;
                    next.push(v);
                }
            }
            frontier = next;
        }
        hops
    }

    /// Reserves the sender's radio: returns the time the frame actually
    /// starts transmitting (≥ `now` under congestion) and books the slot.
    fn egress_start(&mut self, from: NodeId, now: f64) -> f64 {
        if self.congestion.frames_per_sec <= 0.0 {
            return now;
        }
        let start = now.max(self.egress_free_at[from.index()]);
        let service = 1.0 / self.congestion.frames_per_sec;
        self.egress_free_at[from.index()] = start + service;
        let queued = start - now;
        if queued > 0.0 {
            self.stats.queueing_delay_total += queued;
        }
        start
    }

    /// Schedules a delivery on its destination's shard lane.
    fn enqueue(&mut self, time: f64, delivery: Delivery<M>) {
        let lane = self.lane_of[delivery.to.index()];
        self.queue.schedule(lane, time, delivery);
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Sends `msg` from `from` to a direct radio neighbor `to` at time
    /// `now`. Returns `true` if the transmission was scheduled (it may
    /// still be lost only if out of range — loss is decided immediately).
    pub fn unicast<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: M,
        now: f64,
        rng: &mut R,
    ) -> bool {
        if self.node_down[from.index()] || self.node_down[to.index()] {
            self.stats.blocked_down += 1;
            return false;
        }
        if !self.topology.in_range(from, to) {
            self.stats.out_of_range += 1;
            return false;
        }
        match self.attempt_hop(from, now, rng) {
            Some(latency) => {
                let start = self.egress_start(from, now);
                self.enqueue(
                    start + latency,
                    Delivery {
                        from,
                        to,
                        hops: 1,
                        msg,
                    },
                );
                true
            }
            None => false,
        }
    }

    /// Broadcasts `msg` to every radio neighbor of `from`; each neighbor
    /// independently experiences loss and latency. Returns the number of
    /// scheduled deliveries.
    pub fn broadcast<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        msg: M,
        now: f64,
        rng: &mut R,
    ) -> usize {
        let neighbors: Vec<NodeId> = self.topology.neighbors(from).to_vec();
        neighbors
            .into_iter()
            .filter(|&to| self.unicast(from, to, msg.clone(), now, rng))
            .count()
    }

    /// Floods `msg` from `from` to every node within `max_hops`, following
    /// BFS tree paths with per-hop loss and latency compounding. Returns
    /// the number of nodes the flood reached.
    ///
    /// This models the paper's temporary-cluster setup ("informs its
    /// neighbor nodes within N hops"): each node is reached along its
    /// shortest path; losing any hop on that path loses the node.
    pub fn flood<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        msg: M,
        now: f64,
        max_hops: u16,
        rng: &mut R,
    ) -> usize {
        if self.node_down[from.index()] {
            self.stats.blocked_down += 1;
            return 0;
        }
        let hops = if self.any_down() {
            self.hops_excluding_down(from)
        } else {
            self.topology.hops_from(from)
        };
        let start = self.egress_start(from, now);
        let mut reached = 0;
        let destinations: Vec<NodeId> = self.topology.node_ids().collect();
        for to in destinations {
            let h = hops[to.index()];
            if to == from || h == 0 || h > max_hops || h == u16::MAX {
                continue;
            }
            // Compound per-hop transmissions along the shortest path.
            let mut latency = 0.0;
            let mut lost = false;
            for _ in 0..h {
                match self.attempt_hop(from, now, rng) {
                    Some(l) => latency += l,
                    None => {
                        lost = true;
                        break;
                    }
                }
            }
            if lost {
                continue;
            }
            reached += 1;
            self.enqueue(
                start + latency,
                Delivery {
                    from,
                    to,
                    hops: h,
                    msg: msg.clone(),
                },
            );
        }
        reached
    }

    /// Routes `msg` from `from` to an arbitrary node `to` along the
    /// shortest radio path, compounding per-hop loss and latency (the
    /// geographic-forwarding path a member uses to reach its temporary
    /// cluster head). Returns `true` if the message survived every hop.
    pub fn route<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: M,
        now: f64,
        rng: &mut R,
    ) -> bool {
        if self.node_down[from.index()] || self.node_down[to.index()] {
            self.stats.blocked_down += 1;
            return false;
        }
        if from == to {
            // Local delivery: immediate, lossless.
            self.enqueue(
                now,
                Delivery {
                    from,
                    to,
                    hops: 0,
                    msg,
                },
            );
            return true;
        }
        let h = if self.any_down() {
            self.hops_excluding_down(from)[to.index()]
        } else {
            self.topology.hops_from(from)[to.index()]
        };
        if h == u16::MAX {
            self.stats.out_of_range += 1;
            return false;
        }
        let start = self.egress_start(from, now);
        let mut latency = start - now;
        for _ in 0..h {
            match self.attempt_hop(from, now, rng) {
                Some(l) => latency += l,
                None => return false,
            }
        }
        self.enqueue(
            now + latency,
            Delivery {
                from,
                to,
                hops: h,
                msg,
            },
        );
        true
    }

    /// Delivers every in-flight message with arrival time ≤ `until`,
    /// in arrival order. Each returned tuple is `(arrival_time, delivery)`.
    /// Packets whose destination went down after transmission are
    /// discarded here (counted under `dropped` and `blocked_down`).
    pub fn poll(&mut self, until: f64) -> Vec<(f64, Delivery<M>)> {
        let mut out = self.queue.pop_until(until);
        if self.any_down() {
            out.retain(|(arrival, d)| {
                let up = !self.node_down[d.to.index()];
                if !up {
                    self.stats.dropped += 1;
                    self.stats.blocked_down += 1;
                    if self.obs.enabled() {
                        self.obs.record(Event::RadioDrop {
                            time: *arrival,
                            node: d.to.value(),
                            cause: "endpoint_down".to_string(),
                        });
                    }
                }
                up
            });
        }
        self.stats.delivered += out.len() as u64;
        out
    }

    /// Number of messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reliable_net() -> Network<u32> {
        Network::new(Topology::grid(3, 3, 25.0, 30.0), RadioModel::reliable())
    }

    #[test]
    fn scheduler_orders_by_time_then_fifo() {
        let mut q = EventScheduler::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a");
        q.schedule(1.0, "b"); // same time: FIFO
        let events = q.pop_until(10.0);
        assert_eq!(
            events,
            vec![(1.0, "a"), (1.0, "b"), (5.0, "c")]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn scheduler_pop_until_is_partial() {
        let mut q = EventScheduler::new();
        for i in 0..10 {
            q.schedule(i as f64, i);
        }
        assert_eq!(q.pop_until(4.5).len(), 5);
        assert_eq!(q.next_time(), Some(5.0));
        assert_eq!(q.len(), 5);
    }

    #[test]
    #[should_panic(expected = "event time must not be NaN")]
    fn scheduler_rejects_nan() {
        EventScheduler::new().schedule(f64::NAN, ());
    }

    #[test]
    fn sharded_scheduler_matches_single_queue_order() {
        // Fuzz a shared insert stream into 1/2/4-lane schedulers and a
        // plain EventScheduler: pop order must be identical for all.
        let mut rng = StdRng::seed_from_u64(77);
        let inserts: Vec<(f64, usize)> = (0..500)
            .map(|i| ((rng.gen::<f64>() * 8.0).floor() * 0.5, i))
            .collect();
        let mut single = EventScheduler::new();
        let mut lanes: Vec<ShardedScheduler<usize>> =
            [1, 2, 4].iter().map(|&k| ShardedScheduler::new(k)).collect();
        for &(t, id) in &inserts {
            single.schedule(t, id);
            for q in lanes.iter_mut() {
                q.schedule(id % q.lanes(), t, id);
            }
        }
        let reference = single.pop_until(f64::INFINITY);
        for mut q in lanes {
            assert_eq!(q.pop_until(f64::INFINITY), reference);
        }
    }

    #[test]
    fn sharded_scheduler_pop_until_is_partial_across_lanes() {
        let mut q = ShardedScheduler::new(3);
        for i in 0..9 {
            q.schedule(i % 3, i as f64, i);
        }
        assert_eq!(q.pop_until(4.5).len(), 5);
        assert_eq!(q.next_time(), Some(5.0));
        assert_eq!(q.len(), 4);
        assert!(!q.is_empty());
    }

    #[test]
    fn relane_preserves_pop_order() {
        let mut rng = StdRng::seed_from_u64(78);
        let mut a = ShardedScheduler::new(1);
        let mut b = ShardedScheduler::new(1);
        for i in 0..200usize {
            let t = (rng.gen::<f64>() * 4.0).floor();
            a.schedule(0, t, i);
            b.schedule(0, t, i);
        }
        // Re-bucket one copy into 4 lanes mid-flight.
        b.relane(4, |&id| id % 4);
        assert_eq!(b.lanes(), 4);
        assert_eq!(
            a.pop_until(f64::INFINITY),
            b.pop_until(f64::INFINITY)
        );
    }

    #[test]
    fn sharded_network_polls_identically() {
        // Same traffic through an unsharded and a 3-sharded network:
        // identical RNG draws, identical arrival order, identical stats.
        let topo = Topology::grid(4, 9, 25.0, 30.0);
        let mut plain: Network<usize> = Network::new(topo.clone(), RadioModel::lossy());
        let mut sharded: Network<usize> = Network::new(topo.clone(), RadioModel::lossy());
        sharded.set_shards(&ShardMap::from_topology(&topo, 3));
        assert_eq!(sharded.shard_lanes(), 3);
        let mut rng_a = StdRng::seed_from_u64(90);
        let mut rng_b = StdRng::seed_from_u64(90);
        for step in 0..40u64 {
            let now = step as f64 * 0.25;
            let from = NodeId::from((step as usize * 7) % 36);
            let to = NodeId::from((step as usize * 11 + 5) % 36);
            plain.route(from, to, step as usize, now, &mut rng_a);
            sharded.route(from, to, step as usize, now, &mut rng_b);
            plain.flood(from, step as usize, now, 2, &mut rng_a);
            sharded.flood(from, step as usize, now, 2, &mut rng_b);
            assert_eq!(plain.poll(now), sharded.poll(now));
            assert_eq!(plain.next_arrival(), sharded.next_arrival());
        }
        assert_eq!(plain.poll(f64::INFINITY), sharded.poll(f64::INFINITY));
        assert_eq!(plain.stats(), sharded.stats());
    }

    #[test]
    fn unicast_delivers_in_range() {
        let mut net = reliable_net();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(net.unicast(0.into(), 1.into(), 42, 0.0, &mut rng));
        let out = net.poll(1.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.msg, 42);
        assert_eq!(out[0].1.hops, 1);
        assert!(out[0].0 > 0.0);
    }

    #[test]
    fn unicast_rejects_out_of_range() {
        let mut net = reliable_net();
        let mut rng = StdRng::seed_from_u64(2);
        // 0 → 8 is the far corner, not a direct neighbor.
        assert!(!net.unicast(0.into(), 8.into(), 1, 0.0, &mut rng));
        assert_eq!(net.stats().out_of_range, 1);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn broadcast_reaches_all_neighbors() {
        let mut net = reliable_net();
        let mut rng = StdRng::seed_from_u64(3);
        // Centre node 4 has 4 orthogonal neighbors.
        let n = net.broadcast(4.into(), 7, 0.0, &mut rng);
        assert_eq!(n, 4);
        assert_eq!(net.poll(1.0).len(), 4);
    }

    #[test]
    fn flood_reaches_hop_bounded_set() {
        let mut net = reliable_net();
        let mut rng = StdRng::seed_from_u64(4);
        let reached = net.flood(0.into(), 9, 0.0, 2, &mut rng);
        // Manhattan ball radius 2 from corner of 3×3 grid, minus origin:
        // (0,1),(1,0),(0,2),(1,1),(2,0) → 5 nodes.
        assert_eq!(reached, 5);
        let deliveries = net.poll(10.0);
        assert_eq!(deliveries.len(), 5);
        // Multi-hop deliveries are later than single-hop on average.
        for (_, d) in &deliveries {
            assert!(d.hops <= 2);
        }
    }

    #[test]
    fn lossy_flood_loses_some_nodes() {
        let topo = Topology::grid(8, 8, 25.0, 30.0);
        let mut net: Network<u8> = Network::new(
            topo,
            RadioModel {
                loss_probability: 0.3,
                base_latency: 0.01,
                latency_jitter: 0.0,
                mac_retries: 0,
            },
        );
        let mut rng = StdRng::seed_from_u64(5);
        let reached = net.flood(0.into(), 0, 0.0, 6, &mut rng);
        let eligible = net.topology().nodes_within_hops(0.into(), 6).len() - 1;
        assert!(reached < eligible, "loss should prune the flood");
        assert!(reached > 0);
        assert!(net.stats().dropped > 0);
    }

    #[test]
    fn stats_track_traffic() {
        let mut net = reliable_net();
        let mut rng = StdRng::seed_from_u64(6);
        net.unicast(0.into(), 1.into(), 1, 0.0, &mut rng);
        net.broadcast(4.into(), 2, 0.0, &mut rng);
        net.poll(10.0);
        let s = net.stats();
        assert_eq!(s.transmissions, 5);
        assert_eq!(s.delivered, 5);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn route_traverses_multiple_hops() {
        let mut net = reliable_net();
        let mut rng = StdRng::seed_from_u64(8);
        // Corner to corner of the 3×3 grid: 4 hops.
        assert!(net.route(0.into(), 8.into(), 99, 0.0, &mut rng));
        let out = net.poll(10.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.hops, 4);
        assert!((out[0].0 - 4.0 * 0.005).abs() < 1e-12);
    }

    #[test]
    fn route_to_self_is_immediate() {
        let mut net = reliable_net();
        let mut rng = StdRng::seed_from_u64(9);
        assert!(net.route(3.into(), 3.into(), 1, 5.0, &mut rng));
        let out = net.poll(5.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 5.0);
        assert_eq!(out[0].1.hops, 0);
    }

    #[test]
    fn route_fails_probabilistically_per_hop() {
        let topo = Topology::grid(1, 10, 25.0, 30.0);
        let mut net: Network<u8> = Network::new(
            topo,
            RadioModel {
                loss_probability: 0.2,
                base_latency: 0.01,
                latency_jitter: 0.0,
                mac_retries: 0,
            },
        );
        let mut rng = StdRng::seed_from_u64(10);
        let n = 2000;
        let ok = (0..n)
            .filter(|_| net.route(0.into(), 9.into(), 0, 0.0, &mut rng))
            .count();
        let rate = ok as f64 / n as f64;
        let expected = 0.8f64.powi(9);
        assert!((rate - expected).abs() < 0.03, "rate {rate} vs {expected}");
    }

    #[test]
    fn congestion_serialises_a_burst() {
        let topo = Topology::grid(1, 2, 25.0, 30.0);
        let mut net: Network<usize> = Network::with_congestion(
            topo,
            RadioModel::reliable(),
            CongestionModel { frames_per_sec: 10.0 }, // 100 ms per frame
        );
        let mut rng = StdRng::seed_from_u64(11);
        // Ten frames queued at t = 0 from the same sender.
        for i in 0..10 {
            assert!(net.unicast(0.into(), 1.into(), i, 0.0, &mut rng));
        }
        let out = net.poll(f64::INFINITY);
        assert_eq!(out.len(), 10);
        // Arrivals are spaced by the 100 ms service time.
        for (k, (t, d)) in out.iter().enumerate() {
            assert!((*t - (k as f64 * 0.1 + 0.005)).abs() < 1e-9, "frame {k} at {t}");
            assert_eq!(d.msg, k);
        }
        // Nine frames waited: 0.1+0.2+...+0.9 = 4.5 s of queueing.
        assert!((net.stats().queueing_delay_total - 4.5).abs() < 1e-9);
    }

    #[test]
    fn unlimited_bandwidth_has_no_queueing() {
        let mut net = reliable_net();
        let mut rng = StdRng::seed_from_u64(12);
        for i in 0..20 {
            net.unicast(0.into(), 1.into(), i, 0.0, &mut rng);
        }
        assert_eq!(net.stats().queueing_delay_total, 0.0);
        // All arrive at the same latency.
        let out = net.poll(1.0);
        assert!(out.iter().all(|(t, _)| (*t - 0.005).abs() < 1e-12));
    }

    #[test]
    fn distinct_senders_do_not_block_each_other() {
        let topo = Topology::grid(1, 3, 25.0, 30.0);
        let mut net: Network<u8> = Network::with_congestion(
            topo,
            RadioModel::reliable(),
            CongestionModel { frames_per_sec: 10.0 },
        );
        let mut rng = StdRng::seed_from_u64(13);
        net.unicast(0.into(), 1.into(), 0, 0.0, &mut rng);
        net.unicast(2.into(), 1.into(), 1, 0.0, &mut rng);
        let out = net.poll(1.0);
        // Both arrive promptly: independent radios.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(t, _)| *t < 0.01));
        assert_eq!(net.stats().queueing_delay_total, 0.0);
    }

    #[test]
    fn burst_channel_adds_correlated_losses() {
        use crate::fault::GilbertElliott;
        let topo = Topology::grid(1, 2, 25.0, 30.0);
        let mut net: Network<u32> = Network::new(topo, RadioModel::reliable());
        net.set_burst_model(GilbertElliott::sea_surface(1.0));
        let mut rng = StdRng::seed_from_u64(31);
        let n = 5000;
        let ok = (0..n)
            .filter(|&i| net.unicast(0.into(), 1.into(), i, 0.0, &mut rng))
            .count();
        let stats = net.stats();
        assert!(stats.burst_dropped > 0, "bursts never fired");
        assert_eq!(stats.dropped, stats.burst_dropped, "reliable radio: only bursts drop");
        assert_eq!(ok as u64 + stats.dropped, n as u64);
        // Severity-1 stationary loss is substantial but far from total.
        let rate = ok as f64 / n as f64;
        let expected = 1.0 - GilbertElliott::sea_surface(1.0).average_loss();
        assert!((rate - expected).abs() < 0.05, "delivery {rate} vs {expected}");
    }

    #[test]
    fn disabled_burst_model_is_removed() {
        use crate::fault::GilbertElliott;
        let mut net = reliable_net();
        net.set_burst_model(GilbertElliott::sea_surface(0.7));
        assert!(net.burst_model().is_some());
        net.set_burst_model(GilbertElliott::disabled());
        assert!(net.burst_model().is_none());
    }

    #[test]
    fn down_endpoints_block_unicast() {
        let mut net = reliable_net();
        let mut rng = StdRng::seed_from_u64(32);
        net.set_node_down(1.into(), true);
        assert!(!net.unicast(0.into(), 1.into(), 1, 0.0, &mut rng));
        assert!(!net.unicast(1.into(), 0.into(), 2, 0.0, &mut rng));
        assert_eq!(net.stats().blocked_down, 2);
        assert_eq!(net.stats().transmissions, 0);
        net.set_node_down(1.into(), false);
        assert!(net.unicast(0.into(), 1.into(), 3, 0.0, &mut rng));
    }

    #[test]
    fn route_detours_around_down_relay() {
        // 3×3 grid, corner 0 → corner 2 along the top row is 2 hops via
        // node 1; with node 1 down the shortest live path is 4 hops.
        let mut net = reliable_net();
        let mut rng = StdRng::seed_from_u64(33);
        net.set_node_down(1.into(), true);
        assert!(net.route(0.into(), 2.into(), 9, 0.0, &mut rng));
        let out = net.poll(10.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.hops, 4);
    }

    #[test]
    fn flood_skips_down_nodes() {
        let mut net = reliable_net();
        let mut rng = StdRng::seed_from_u64(34);
        net.set_node_down(1.into(), true);
        // Centre flood reaches the 7 live others (8 minus the down node).
        let reached = net.flood(4.into(), 0, 0.0, 4, &mut rng);
        assert_eq!(reached, 7);
    }

    #[test]
    fn in_flight_packet_to_newly_down_node_is_discarded() {
        let mut net = reliable_net();
        let mut rng = StdRng::seed_from_u64(35);
        assert!(net.unicast(0.into(), 1.into(), 7, 0.0, &mut rng));
        net.set_node_down(1.into(), true);
        assert!(net.poll(10.0).is_empty());
        assert_eq!(net.stats().blocked_down, 1);
        assert_eq!(net.stats().delivered, 0);
    }

    #[test]
    fn down_source_cannot_flood() {
        let mut net = reliable_net();
        let mut rng = StdRng::seed_from_u64(36);
        net.set_node_down(4.into(), true);
        assert_eq!(net.flood(4.into(), 0, 0.0, 4, &mut rng), 0);
        assert_eq!(net.stats().blocked_down, 1);
    }

    #[test]
    fn obs_journals_radio_and_endpoint_drops() {
        let topo = Topology::grid(1, 3, 25.0, 30.0);
        let mut net: Network<u8> = Network::new(
            topo,
            RadioModel {
                loss_probability: 0.5,
                base_latency: 0.01,
                latency_jitter: 0.0,
                mac_retries: 0,
            },
        );
        let obs = Obs::in_memory();
        net.set_obs(obs.clone());
        let mut rng = StdRng::seed_from_u64(40);
        for _ in 0..40 {
            net.unicast(0.into(), 1.into(), 1, 2.5, &mut rng);
        }
        let counts = obs.counts();
        assert_eq!(counts.radio_drops, net.stats().dropped);
        assert!(counts.radio_drops > 0);
        // Every drop event carries the sender and the transmission time.
        for ev in obs.events().expect("in-memory") {
            assert_eq!(ev.time(), Some(2.5));
            assert_eq!(ev.kind(), "radio_drop");
        }
        // A packet caught in flight by a dying endpoint is journalled too.
        net.poll(5.0); // drain the survivors of the burst above first
        while !net.unicast(2.into(), 1.into(), 2, 10.0, &mut rng) {}
        net.set_node_down(1.into(), true);
        net.poll(20.0);
        assert_eq!(obs.counts().endpoint_down_drops, 1);
    }

    #[test]
    fn deliveries_arrive_in_time_order() {
        let topo = Topology::grid(1, 8, 25.0, 30.0);
        let mut net: Network<usize> = Network::new(
            topo,
            RadioModel {
                loss_probability: 0.0,
                base_latency: 0.01,
                latency_jitter: 0.05,
                mac_retries: 0,
            },
        );
        let mut rng = StdRng::seed_from_u64(7);
        net.flood(0.into(), 0, 0.0, 7, &mut rng);
        let out = net.poll(100.0);
        let times: Vec<f64> = out.iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
