//! Network topology: node placement, radio neighborhoods, hop distances.
//!
//! The paper deploys nodes "manually in grid fashion" (Section III-A,
//! Fig. 9) with a deployment spacing D = 25 m; the grid rows are the unit
//! over which the spatial–temporal correlations (eq. 9–12) are computed.

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// 2-D position in metres (mirror of `sid_ocean::Vec2`, kept local so the
/// network substrate has no physics dependency).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// East coordinate (m).
    pub x: f64,
    /// North coordinate (m).
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance(&self, other: &Position) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// A deployed network layout with precomputed neighbor tables.
///
/// # Examples
///
/// ```
/// use sid_net::Topology;
///
/// // The paper's style of deployment: a grid at 25 m spacing.
/// let topo = Topology::grid(4, 5, 25.0, 30.0);
/// assert_eq!(topo.len(), 20);
/// assert_eq!(topo.grid_rows(), Some(4));
/// // Nodes 25 m apart are radio neighbors at 30 m range.
/// assert!(topo.neighbors(0.into()).contains(&1.into()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    positions: Vec<Position>,
    radio_range: f64,
    neighbors: Vec<Vec<NodeId>>,
    /// Grid shape when built with [`Topology::grid`].
    grid_shape: Option<(usize, usize)>,
    /// Grid spacing when built with [`Topology::grid`].
    grid_spacing: Option<f64>,
}

impl Topology {
    /// Builds a topology from explicit positions and a disc radio range.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty or `radio_range` is not positive.
    pub fn from_positions(positions: Vec<Position>, radio_range: f64) -> Self {
        assert!(!positions.is_empty(), "topology needs at least one node");
        assert!(radio_range > 0.0, "radio range must be positive");
        let neighbors = Self::build_neighbors(&positions, radio_range);
        Topology {
            positions,
            radio_range,
            neighbors,
            grid_shape: None,
            grid_spacing: None,
        }
    }

    /// Builds a `rows × cols` grid at `spacing` metres, node `r·cols + c`
    /// at `(c·spacing, r·spacing)`.
    ///
    /// # Panics
    ///
    /// Panics if `rows`/`cols` is zero or `spacing`/`radio_range` is not
    /// positive.
    pub fn grid(rows: usize, cols: usize, spacing: f64, radio_range: f64) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be non-empty");
        assert!(spacing > 0.0, "spacing must be positive");
        let positions = (0..rows * cols)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                Position::new(c as f64 * spacing, r as f64 * spacing)
            })
            .collect();
        let mut t = Self::from_positions(positions, radio_range);
        t.grid_shape = Some((rows, cols));
        t.grid_spacing = Some(spacing);
        t
    }

    fn build_neighbors(positions: &[Position], range: f64) -> Vec<Vec<NodeId>> {
        (0..positions.len())
            .map(|i| {
                (0..positions.len())
                    .filter(|&j| j != i && positions[i].distance(&positions[j]) <= range)
                    .map(NodeId::from)
                    .collect()
            })
            .collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the topology has no nodes (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId::from)
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn position(&self, id: NodeId) -> Position {
        self.positions[id.index()]
    }

    /// The disc radio range (m).
    pub fn radio_range(&self) -> f64 {
        self.radio_range
    }

    /// Radio neighbors of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.neighbors[id.index()]
    }

    /// Grid rows if grid-built.
    pub fn grid_rows(&self) -> Option<usize> {
        self.grid_shape.map(|(r, _)| r)
    }

    /// Grid columns if grid-built.
    pub fn grid_cols(&self) -> Option<usize> {
        self.grid_shape.map(|(_, c)| c)
    }

    /// Grid spacing if grid-built (the paper's D).
    pub fn grid_spacing(&self) -> Option<f64> {
        self.grid_spacing
    }

    /// Grid row of a node if grid-built.
    pub fn row_of(&self, id: NodeId) -> Option<usize> {
        self.grid_shape.map(|(_, cols)| id.index() / cols)
    }

    /// Grid column of a node if grid-built.
    pub fn col_of(&self, id: NodeId) -> Option<usize> {
        self.grid_shape.map(|(_, cols)| id.index() % cols)
    }

    /// Node id at grid `(row, col)` if grid-built and in range.
    pub fn at_grid(&self, row: usize, col: usize) -> Option<NodeId> {
        let (rows, cols) = self.grid_shape?;
        (row < rows && col < cols).then(|| NodeId::from(row * cols + col))
    }

    /// Hop counts from `source` to every node (BFS over the radio graph);
    /// `u16::MAX` marks unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn hops_from(&self, source: NodeId) -> Vec<u16> {
        let mut hops = vec![u16::MAX; self.len()];
        hops[source.index()] = 0;
        let mut frontier = vec![source];
        let mut depth = 0u16;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.neighbors(u) {
                    if hops[v.index()] == u16::MAX {
                        hops[v.index()] = depth;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        hops
    }

    /// All nodes within `max_hops` of `center`, including the center
    /// itself, in ascending hop order.
    pub fn nodes_within_hops(&self, center: NodeId, max_hops: u16) -> Vec<NodeId> {
        let hops = self.hops_from(center);
        let mut out: Vec<NodeId> = self
            .node_ids()
            .filter(|n| hops[n.index()] <= max_hops)
            .collect();
        out.sort_by_key(|n| (hops[n.index()], n.index()));
        out
    }

    /// Whether two nodes are in direct radio range.
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        self.positions[a.index()].distance(&self.positions[b.index()]) <= self.radio_range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_positions_are_regular() {
        let t = Topology::grid(3, 4, 25.0, 30.0);
        assert_eq!(t.len(), 12);
        let p = t.position(NodeId::from(5)); // row 1, col 1
        assert_eq!(p, Position::new(25.0, 25.0));
        assert_eq!(t.row_of(NodeId::from(5)), Some(1));
        assert_eq!(t.col_of(NodeId::from(5)), Some(1));
        assert_eq!(t.at_grid(1, 1), Some(NodeId::from(5)));
        assert_eq!(t.at_grid(3, 0), None);
        assert_eq!(t.grid_spacing(), Some(25.0));
    }

    #[test]
    fn neighbors_respect_radio_range() {
        let t = Topology::grid(3, 3, 25.0, 30.0);
        // Centre node (1,1) = id 4: 4 orthogonal neighbors at 25 m;
        // diagonals at 35.4 m are out of the 30 m range.
        let n = t.neighbors(NodeId::from(4));
        assert_eq!(n.len(), 4);
        // With 40 m range, diagonals join.
        let t = Topology::grid(3, 3, 25.0, 40.0);
        assert_eq!(t.neighbors(NodeId::from(4)).len(), 8);
    }

    #[test]
    fn hops_bfs_counts() {
        let t = Topology::grid(1, 5, 25.0, 30.0); // a line
        let hops = t.hops_from(NodeId::from(0));
        assert_eq!(hops, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unreachable_nodes_marked() {
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(10.0, 0.0),
            Position::new(1000.0, 0.0), // isolated
        ];
        let t = Topology::from_positions(positions, 15.0);
        let hops = t.hops_from(NodeId::from(0));
        assert_eq!(hops[1], 1);
        assert_eq!(hops[2], u16::MAX);
    }

    #[test]
    fn nodes_within_hops_sorted_by_distance() {
        let t = Topology::grid(1, 6, 25.0, 30.0);
        let within = t.nodes_within_hops(NodeId::from(2), 2);
        // Hops from node 2 on a line: [2,1,0,1,2,3] → ids 0..4 within 2.
        assert_eq!(within.len(), 5);
        assert_eq!(within[0], NodeId::from(2));
        assert!(!within.contains(&NodeId::from(5)));
    }

    #[test]
    fn six_hop_cluster_matches_paper() {
        // The paper's temporary clusters span "six hops of neighbors".
        let t = Topology::grid(10, 10, 25.0, 30.0);
        let members = t.nodes_within_hops(NodeId::from(0), 6);
        // Manhattan ball of radius 6 in a 10×10 corner: nodes with
        // row+col ≤ 6 → 7+6+5+4+3+2+1 = 28.
        assert_eq!(members.len(), 28);
    }

    #[test]
    fn in_range_is_symmetric() {
        let t = Topology::grid(2, 2, 25.0, 30.0);
        for a in t.node_ids() {
            for b in t.node_ids() {
                assert_eq!(t.in_range(a, b), t.in_range(b, a));
            }
        }
    }

    #[test]
    fn non_grid_topology_lacks_grid_metadata() {
        let t = Topology::from_positions(vec![Position::new(0.0, 0.0)], 10.0);
        assert_eq!(t.grid_rows(), None);
        assert_eq!(t.row_of(NodeId::from(0)), None);
        assert_eq!(t.at_grid(0, 0), None);
    }

    #[test]
    #[should_panic(expected = "topology needs at least one node")]
    fn rejects_empty() {
        Topology::from_positions(Vec::new(), 10.0);
    }
}
