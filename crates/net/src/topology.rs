//! Network topology: node placement, radio neighborhoods, hop distances.
//!
//! The paper deploys nodes "manually in grid fashion" (Section III-A,
//! Fig. 9) with a deployment spacing D = 25 m; the grid rows are the unit
//! over which the spatial–temporal correlations (eq. 9–12) are computed.
//!
//! Fleet-scale deployments (hundreds to thousands of free-form buoys)
//! build their neighbor tables through a deterministic spatial hash
//! instead of the all-pairs scan; see [`NeighborIndex`] and DESIGN.md
//! §16. Both index implementations produce byte-identical tables, so
//! the O(N²) scan doubles as the test oracle for the hash.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// Node count above which [`Topology::from_positions`] switches from the
/// all-pairs neighbor scan to the spatial-hash index. Below this, the
/// brute-force scan is both simpler and faster (no bucket bookkeeping);
/// above it, the hash's O(N · k) build wins. The crossover is shallow —
/// anything in the 32–256 range behaves sensibly — so the constant is
/// chosen small enough that every fleet-class deployment takes the hash
/// path while the paper's grids (≤ 36 nodes in the DST population) keep
/// the historically-exercised scan.
pub const SPATIAL_HASH_THRESHOLD: usize = 64;

/// Which neighbor-table construction a [`Topology`] uses.
///
/// Both implementations emit, for every node, the exact same neighbor
/// list: all other nodes within `radio_range` (boundary **inclusive**:
/// `distance == radio_range` is a neighbor), in ascending [`NodeId`]
/// order. `Auto` picks by size; the explicit variants exist so tests and
/// benches can cross-check the two paths against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeighborIndex {
    /// Brute force below [`SPATIAL_HASH_THRESHOLD`] nodes, spatial hash
    /// at or above it.
    #[default]
    Auto,
    /// The all-pairs O(N²) scan — the test oracle.
    BruteForce,
    /// The bucketed spatial hash (cell size = radio range, 9-cell probe).
    SpatialHash,
}

/// 2-D position in metres (mirror of `sid_ocean::Vec2`, kept local so the
/// network substrate has no physics dependency).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// East coordinate (m).
    pub x: f64,
    /// North coordinate (m).
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance(&self, other: &Position) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// A deployed network layout with precomputed neighbor tables.
///
/// # Examples
///
/// ```
/// use sid_net::Topology;
///
/// // The paper's style of deployment: a grid at 25 m spacing.
/// let topo = Topology::grid(4, 5, 25.0, 30.0);
/// assert_eq!(topo.len(), 20);
/// assert_eq!(topo.grid_rows(), Some(4));
/// // Nodes 25 m apart are radio neighbors at 30 m range.
/// assert!(topo.neighbors(0.into()).contains(&1.into()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    positions: Vec<Position>,
    radio_range: f64,
    neighbors: Vec<Vec<NodeId>>,
    /// Grid shape when built with [`Topology::grid`].
    grid_shape: Option<(usize, usize)>,
    /// Grid spacing when built with [`Topology::grid`].
    grid_spacing: Option<f64>,
}

impl Topology {
    /// Builds a topology from explicit positions and a disc radio range,
    /// selecting the neighbor index automatically
    /// ([`NeighborIndex::Auto`]).
    ///
    /// The neighbor tables are independent of the index choice: every
    /// [`Topology::neighbors`] list holds all other nodes within
    /// `radio_range` (inclusive boundary) in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty, contains a non-finite coordinate,
    /// or `radio_range` is not positive.
    pub fn from_positions(positions: Vec<Position>, radio_range: f64) -> Self {
        Self::from_positions_with(positions, radio_range, NeighborIndex::Auto)
    }

    /// Builds a free-form (non-grid) deployment: explicit positions, no
    /// row/column metadata. Alias of [`Topology::from_positions`], named
    /// for call sites that want the deployment class to read at a
    /// glance. Duplicate positions are allowed — co-located nodes are
    /// mutual neighbors (distance 0 ≤ range) and the sorted-ascending
    /// [`Topology::neighbors`] guarantee holds for them like any other
    /// layout.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty, contains a non-finite coordinate,
    /// or `radio_range` is not positive.
    pub fn free_form(positions: Vec<Position>, radio_range: f64) -> Self {
        Self::from_positions(positions, radio_range)
    }

    /// Builds a topology with an explicit neighbor-index choice. Exists
    /// for tests and benches that cross-check [`NeighborIndex::BruteForce`]
    /// against [`NeighborIndex::SpatialHash`]; production call sites use
    /// [`Topology::from_positions`] and let `Auto` pick.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty, contains a non-finite coordinate,
    /// or `radio_range` is not positive.
    pub fn from_positions_with(
        positions: Vec<Position>,
        radio_range: f64,
        index: NeighborIndex,
    ) -> Self {
        assert!(!positions.is_empty(), "topology needs at least one node");
        assert!(radio_range > 0.0, "radio range must be positive");
        assert!(
            positions.iter().all(|p| p.x.is_finite() && p.y.is_finite()),
            "positions must be finite"
        );
        let neighbors = Self::build_neighbors(&positions, radio_range, index);
        debug_assert!(
            neighbors
                .iter()
                .all(|n| n.windows(2).all(|w| w[0] < w[1])),
            "neighbor lists must be strictly ascending"
        );
        Topology {
            positions,
            radio_range,
            neighbors,
            grid_shape: None,
            grid_spacing: None,
        }
    }

    /// Builds a `rows × cols` grid at `spacing` metres, node `r·cols + c`
    /// at `(c·spacing, r·spacing)`.
    ///
    /// # Panics
    ///
    /// Panics if `rows`/`cols` is zero or `spacing`/`radio_range` is not
    /// positive.
    pub fn grid(rows: usize, cols: usize, spacing: f64, radio_range: f64) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be non-empty");
        assert!(spacing > 0.0, "spacing must be positive");
        let positions = (0..rows * cols)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                Position::new(c as f64 * spacing, r as f64 * spacing)
            })
            .collect();
        let mut t = Self::from_positions(positions, radio_range);
        t.grid_shape = Some((rows, cols));
        t.grid_spacing = Some(spacing);
        t
    }

    fn build_neighbors(
        positions: &[Position],
        range: f64,
        index: NeighborIndex,
    ) -> Vec<Vec<NodeId>> {
        let use_hash = match index {
            NeighborIndex::Auto => positions.len() >= SPATIAL_HASH_THRESHOLD,
            NeighborIndex::BruteForce => false,
            NeighborIndex::SpatialHash => true,
        };
        if use_hash {
            Self::spatial_hash_neighbors(positions, range)
        } else {
            Self::brute_force_neighbors(positions, range)
        }
    }

    /// The all-pairs scan. Emits ascending ids by construction (the
    /// inner loop walks `j` upward).
    fn brute_force_neighbors(positions: &[Position], range: f64) -> Vec<Vec<NodeId>> {
        (0..positions.len())
            .map(|i| {
                (0..positions.len())
                    .filter(|&j| j != i && positions[i].distance(&positions[j]) <= range)
                    .map(NodeId::from)
                    .collect()
            })
            .collect()
    }

    /// The spatial-hash index: nodes bucketed by `(⌊x/r⌋, ⌊y/r⌋)` with
    /// cell size = radio range, so every neighbor of a node lies in the
    /// 3×3 block of cells around its own. Candidates from the probe pass
    /// the exact same predicate as the scan (`j != i` and inclusive
    /// distance ≤ range) and the per-node list is sorted ascending, so
    /// the resulting tables are byte-identical to
    /// [`Topology::brute_force_neighbors`] — the determinism argument is
    /// "same set, same order", not "same traversal". Coordinates are
    /// finite by construction (checked in `from_positions_with`), so the
    /// cell key is always well-defined.
    fn spatial_hash_neighbors(positions: &[Position], range: f64) -> Vec<Vec<NodeId>> {
        let cell = |v: f64| (v / range).floor() as i64;
        let mut buckets: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in positions.iter().enumerate() {
            buckets.entry((cell(p.x), cell(p.y))).or_default().push(i);
        }
        positions
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (cx, cy) = (cell(p.x), cell(p.y));
                let mut out: Vec<NodeId> = Vec::new();
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        let Some(bucket) = buckets.get(&(cx + dx, cy + dy)) else {
                            continue;
                        };
                        for &j in bucket {
                            if j != i && p.distance(&positions[j]) <= range {
                                out.push(NodeId::from(j));
                            }
                        }
                    }
                }
                out.sort_unstable();
                out
            })
            .collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the topology has no nodes (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId::from)
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn position(&self, id: NodeId) -> Position {
        self.positions[id.index()]
    }

    /// The disc radio range (m).
    pub fn radio_range(&self) -> f64 {
        self.radio_range
    }

    /// Radio neighbors of a node: every other node within
    /// [`Topology::radio_range`] (boundary inclusive — a node at exactly
    /// `radio_range` metres is a neighbor), **in strictly ascending
    /// [`NodeId`] order**. The ordering is an API guarantee, independent
    /// of which [`NeighborIndex`] built the table and of duplicate
    /// positions in the layout; downstream journals depend on it for
    /// byte-stable iteration.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.neighbors[id.index()]
    }

    /// Grid rows if grid-built.
    pub fn grid_rows(&self) -> Option<usize> {
        self.grid_shape.map(|(r, _)| r)
    }

    /// Grid columns if grid-built.
    pub fn grid_cols(&self) -> Option<usize> {
        self.grid_shape.map(|(_, c)| c)
    }

    /// Grid spacing if grid-built (the paper's D).
    pub fn grid_spacing(&self) -> Option<f64> {
        self.grid_spacing
    }

    /// Grid row of a node if grid-built.
    pub fn row_of(&self, id: NodeId) -> Option<usize> {
        self.grid_shape.map(|(_, cols)| id.index() / cols)
    }

    /// Grid column of a node if grid-built.
    pub fn col_of(&self, id: NodeId) -> Option<usize> {
        self.grid_shape.map(|(_, cols)| id.index() % cols)
    }

    /// Node id at grid `(row, col)` if grid-built and in range.
    pub fn at_grid(&self, row: usize, col: usize) -> Option<NodeId> {
        let (rows, cols) = self.grid_shape?;
        (row < rows && col < cols).then(|| NodeId::from(row * cols + col))
    }

    /// Hop counts from `source` to every node (BFS over the radio graph);
    /// `u16::MAX` marks unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn hops_from(&self, source: NodeId) -> Vec<u16> {
        let mut hops = vec![u16::MAX; self.len()];
        hops[source.index()] = 0;
        let mut frontier = vec![source];
        let mut depth = 0u16;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.neighbors(u) {
                    if hops[v.index()] == u16::MAX {
                        hops[v.index()] = depth;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        hops
    }

    /// All nodes within `max_hops` of `center`, including the center
    /// itself, in ascending hop order.
    pub fn nodes_within_hops(&self, center: NodeId, max_hops: u16) -> Vec<NodeId> {
        let hops = self.hops_from(center);
        let mut out: Vec<NodeId> = self
            .node_ids()
            .filter(|n| hops[n.index()] <= max_hops)
            .collect();
        out.sort_by_key(|n| (hops[n.index()], n.index()));
        out
    }

    /// Whether two nodes are in direct radio range.
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        self.positions[a.index()].distance(&self.positions[b.index()]) <= self.radio_range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_positions_are_regular() {
        let t = Topology::grid(3, 4, 25.0, 30.0);
        assert_eq!(t.len(), 12);
        let p = t.position(NodeId::from(5)); // row 1, col 1
        assert_eq!(p, Position::new(25.0, 25.0));
        assert_eq!(t.row_of(NodeId::from(5)), Some(1));
        assert_eq!(t.col_of(NodeId::from(5)), Some(1));
        assert_eq!(t.at_grid(1, 1), Some(NodeId::from(5)));
        assert_eq!(t.at_grid(3, 0), None);
        assert_eq!(t.grid_spacing(), Some(25.0));
    }

    #[test]
    fn neighbors_respect_radio_range() {
        let t = Topology::grid(3, 3, 25.0, 30.0);
        // Centre node (1,1) = id 4: 4 orthogonal neighbors at 25 m;
        // diagonals at 35.4 m are out of the 30 m range.
        let n = t.neighbors(NodeId::from(4));
        assert_eq!(n.len(), 4);
        // With 40 m range, diagonals join.
        let t = Topology::grid(3, 3, 25.0, 40.0);
        assert_eq!(t.neighbors(NodeId::from(4)).len(), 8);
    }

    #[test]
    fn hops_bfs_counts() {
        let t = Topology::grid(1, 5, 25.0, 30.0); // a line
        let hops = t.hops_from(NodeId::from(0));
        assert_eq!(hops, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unreachable_nodes_marked() {
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(10.0, 0.0),
            Position::new(1000.0, 0.0), // isolated
        ];
        let t = Topology::from_positions(positions, 15.0);
        let hops = t.hops_from(NodeId::from(0));
        assert_eq!(hops[1], 1);
        assert_eq!(hops[2], u16::MAX);
    }

    #[test]
    fn nodes_within_hops_sorted_by_distance() {
        let t = Topology::grid(1, 6, 25.0, 30.0);
        let within = t.nodes_within_hops(NodeId::from(2), 2);
        // Hops from node 2 on a line: [2,1,0,1,2,3] → ids 0..4 within 2.
        assert_eq!(within.len(), 5);
        assert_eq!(within[0], NodeId::from(2));
        assert!(!within.contains(&NodeId::from(5)));
    }

    #[test]
    fn six_hop_cluster_matches_paper() {
        // The paper's temporary clusters span "six hops of neighbors".
        let t = Topology::grid(10, 10, 25.0, 30.0);
        let members = t.nodes_within_hops(NodeId::from(0), 6);
        // Manhattan ball of radius 6 in a 10×10 corner: nodes with
        // row+col ≤ 6 → 7+6+5+4+3+2+1 = 28.
        assert_eq!(members.len(), 28);
    }

    #[test]
    fn in_range_is_symmetric() {
        let t = Topology::grid(2, 2, 25.0, 30.0);
        for a in t.node_ids() {
            for b in t.node_ids() {
                assert_eq!(t.in_range(a, b), t.in_range(b, a));
            }
        }
    }

    #[test]
    fn non_grid_topology_lacks_grid_metadata() {
        let t = Topology::from_positions(vec![Position::new(0.0, 0.0)], 10.0);
        assert_eq!(t.grid_rows(), None);
        assert_eq!(t.row_of(NodeId::from(0)), None);
        assert_eq!(t.at_grid(0, 0), None);
    }

    #[test]
    #[should_panic(expected = "topology needs at least one node")]
    fn rejects_empty() {
        Topology::from_positions(Vec::new(), 10.0);
    }

    #[test]
    #[should_panic(expected = "positions must be finite")]
    fn rejects_non_finite_coordinates() {
        Topology::from_positions(vec![Position::new(f64::NAN, 0.0)], 10.0);
    }

    /// A clustered free-form layout for index cross-checks: `n` nodes
    /// scattered around a handful of centres with a deterministic LCG,
    /// including negative coordinates.
    fn scattered(n: usize) -> Vec<Position> {
        let mut state = 0x5EED_1234_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        (0..n)
            .map(|i| {
                let centre = (i % 5) as f64 * 90.0 - 180.0;
                Position::new(centre + next() * 120.0, next() * 240.0 - 120.0)
            })
            .collect()
    }

    #[test]
    fn spatial_hash_matches_brute_force_above_threshold() {
        let positions = scattered(SPATIAL_HASH_THRESHOLD * 4);
        let brute =
            Topology::from_positions_with(positions.clone(), 30.0, NeighborIndex::BruteForce);
        let hash = Topology::from_positions_with(positions, 30.0, NeighborIndex::SpatialHash);
        for id in brute.node_ids() {
            assert_eq!(brute.neighbors(id), hash.neighbors(id), "node {id}");
        }
    }

    #[test]
    fn auto_index_picks_by_size_and_stays_identical() {
        // Below the threshold Auto = brute force; at/above it Auto =
        // spatial hash. Either way the tables are the same, so the only
        // observable is equality with both forced paths.
        for n in [SPATIAL_HASH_THRESHOLD - 1, SPATIAL_HASH_THRESHOLD + 1] {
            let positions = scattered(n);
            let auto = Topology::from_positions(positions.clone(), 35.0);
            let brute =
                Topology::from_positions_with(positions, 35.0, NeighborIndex::BruteForce);
            for id in auto.node_ids() {
                assert_eq!(auto.neighbors(id), brute.neighbors(id));
            }
        }
    }

    #[test]
    fn range_boundary_is_inclusive() {
        // Two nodes at exactly radio_range metres are neighbors — pinned
        // as API behavior on both index implementations.
        let positions = vec![Position::new(0.0, 0.0), Position::new(30.0, 0.0)];
        for index in [NeighborIndex::BruteForce, NeighborIndex::SpatialHash] {
            let t = Topology::from_positions_with(positions.clone(), 30.0, index);
            assert_eq!(t.neighbors(NodeId::from(0)), &[NodeId::from(1)]);
            assert!(t.in_range(NodeId::from(0), NodeId::from(1)));
        }
    }

    #[test]
    fn duplicate_positions_yield_sorted_mutual_neighbors() {
        // Regression: co-located nodes are mutual neighbors (distance
        // 0 ≤ range) and every neighbor list is strictly ascending —
        // the documented `neighbors()` guarantee.
        let mut positions = scattered(SPATIAL_HASH_THRESHOLD * 2);
        let dup = positions[7];
        positions.push(dup);
        positions.push(dup);
        for index in [NeighborIndex::BruteForce, NeighborIndex::SpatialHash] {
            let t = Topology::from_positions_with(positions.clone(), 30.0, index);
            let last = NodeId::from(t.len() - 1);
            let second_last = NodeId::from(t.len() - 2);
            assert!(t.neighbors(NodeId::from(7)).contains(&last));
            assert!(t.neighbors(last).contains(&NodeId::from(7)));
            assert!(t.neighbors(last).contains(&second_last));
            for id in t.node_ids() {
                let n = t.neighbors(id);
                assert!(
                    n.windows(2).all(|w| w[0] < w[1]),
                    "neighbors of {id} not strictly ascending: {n:?}"
                );
            }
        }
    }

    #[test]
    fn free_form_is_from_positions() {
        let positions = scattered(40);
        let a = Topology::free_form(positions.clone(), 30.0);
        let b = Topology::from_positions(positions, 30.0);
        assert_eq!(a, b);
        assert_eq!(a.grid_rows(), None);
    }
}
